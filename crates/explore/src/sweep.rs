//! Sweep expansion and execution.
//!
//! [`expand`] turns a parsed [`SweepSpec`] into the full cross product
//! of its axes — one [`Point`] per grid coordinate — while deduplicating
//! the underlying engine [`Job`]s by content address: coordinates whose
//! configurations fingerprint identically (the single-phase flow ignores
//! the `phases` axis entirely; `nphi` at 1 phase *is* the 1φ baseline)
//! share one job, are computed once, and are counted once in progress
//! totals. This generalizes the shared-1φ-baseline trick of
//! [`sfq_bench::phase_sweep_jobs`] from a special case into the
//! expander's contract.
//!
//! [`run_sweep`] streams the deduplicated jobs through a
//! [`SuiteRunner`] — any store attached to the runner (memory-only or
//! disk-backed) is honored, so a warm `--cache-dir` rerun recomputes
//! nothing — then joins results back onto points and runs the
//! per-benchmark Pareto analysis of [`crate::pareto`].

use crate::pareto;
use crate::spec::{Flow, SweepSpec};
use sfq_bench::report::JobSample;
use sfq_engine::{CacheKey, CacheStats, Job, JobOutcome, SuiteReport, SuiteRunner};
use std::collections::HashMap;
use std::sync::Arc;
use t1map::flow::FlowStats;

/// One coordinate of the sweep grid. `job` indexes into the expansion's
/// deduplicated job list; several points may share it.
#[derive(Debug, Clone)]
pub struct Point {
    /// Benchmark subject label (`adder:16`).
    pub benchmark: String,
    /// Flow coordinate.
    pub flow: Flow,
    /// Phase-count coordinate (carried even by flows that ignore it).
    pub phases: u32,
    /// Optimization-pipeline coordinate.
    pub opt: &'static str,
    /// Timing-analysis coordinate.
    pub timing: bool,
    /// Cell-library variant coordinate.
    pub library: &'static str,
    /// Index of this point's job in [`Expansion::jobs`].
    pub job: usize,
    /// The job's content address (shared by collapsed coordinates).
    pub key: CacheKey,
}

impl Point {
    /// Compact coordinate label, unique per benchmark: flow`@`phases,
    /// plus any non-default coordinates (`t1@4+pre-opt+timing+cheap-dff`).
    pub fn config_label(&self) -> String {
        let mut label = format!("{}@{}", self.flow.token(), self.phases);
        if self.opt != "none" {
            label.push('+');
            label.push_str(self.opt);
        }
        if self.timing {
            label.push_str("+timing");
        }
        if self.library != "default" {
            label.push('+');
            label.push_str(self.library);
        }
        label
    }
}

/// A fully expanded sweep: the point grid plus the deduplicated jobs.
#[derive(Debug)]
pub struct Expansion {
    /// Every grid coordinate, benchmarks outermost (so points of one
    /// benchmark are contiguous), axes in spec order within.
    pub points: Vec<Point>,
    /// Unique jobs, in first-use order. `points.len() >= jobs.len()`.
    pub jobs: Vec<Job>,
}

/// Expands `spec` into its point grid with fingerprint-deduplicated jobs.
///
/// # Errors
///
/// Benchmark construction failures (from [`sfq_circuits::named`]) and
/// configuration-token failures propagate as hard errors.
pub fn expand(spec: &SweepSpec) -> Result<Expansion, String> {
    let mut points = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();
    let mut by_key: HashMap<CacheKey, usize> = HashMap::new();

    for subject in &spec.benchmarks {
        let (label, aig) = sfq_circuits::named::build_subject(subject)?;
        let aig = Arc::new(aig);
        for &flow in &spec.flows {
            for &phases in &spec.phases {
                for &opt in &spec.opts {
                    for &timing in &spec.timing {
                        for &library in &spec.libraries {
                            let lib = crate::spec::library_variant(library)?;
                            let builder = flow.preset(phases);
                            let builder = crate::spec::apply_config_token(builder, opt)?;
                            let config = builder.timing(timing).build();
                            let mut point = Point {
                                benchmark: label.clone(),
                                flow,
                                phases,
                                opt,
                                timing,
                                library,
                                job: usize::MAX,
                                key: CacheKey { aig: 0, setup: 0 },
                            };
                            let job = Job::new(
                                label.clone(),
                                point.config_label(),
                                aig.clone(),
                                lib,
                                config,
                            );
                            let key = job.key();
                            point.key = key;
                            point.job = *by_key.entry(key).or_insert_with(|| {
                                jobs.push(job);
                                jobs.len() - 1
                            });
                            points.push(point);
                        }
                    }
                }
            }
        }
    }
    Ok(Expansion { points, jobs })
}

/// Everything one executed sweep produces: the grid, the deduplicated
/// jobs, per-point metrics and provenance, the per-benchmark Pareto
/// verdicts, and the run-level cache accounting.
#[derive(Debug)]
pub struct ExploreRun {
    /// The spec the sweep ran.
    pub spec: SweepSpec,
    /// The point grid (benchmarks contiguous, spec order within).
    pub points: Vec<Point>,
    /// The deduplicated jobs, aligned with [`Point::job`].
    pub jobs: Vec<Job>,
    /// Per-*job* timing/provenance samples (for `--bench-json`).
    pub samples: Vec<JobSample>,
    /// Per-*point* result metrics.
    pub stats: Vec<FlowStats>,
    /// Per-*point* result provenance (`"memory"`/`"disk"`/`"computed"`),
    /// looked up through the outcome's [`CacheKey`] so collapsed
    /// coordinates report the tier that actually served their job.
    pub sources: Vec<&'static str>,
    /// Per-point frontier membership (within the point's benchmark).
    pub frontier: Vec<bool>,
    /// Per-point witness: global index of a frontier point of the same
    /// benchmark that dominates it. `None` exactly for frontier points.
    pub dominated_by: Vec<Option<usize>>,
    /// The engine's suite report over the deduplicated jobs (per-run
    /// cache accounting, wall time, worker count, shared results).
    pub report: SuiteReport,
}

impl ExploreRun {
    /// Cache counter increments attributable to this run.
    pub fn cache(&self) -> &CacheStats {
        &self.report.cache
    }

    /// Objective vector of point `i` under the spec's objectives.
    pub fn objectives_of(&self, i: usize) -> Vec<u64> {
        self.spec
            .objectives
            .iter()
            .map(|o| o.extract(&self.stats[i]))
            .collect()
    }

    /// Contiguous point-index ranges, one per benchmark, in spec order.
    pub fn benchmark_ranges(&self) -> Vec<(String, std::ops::Range<usize>)> {
        let mut ranges: Vec<(String, std::ops::Range<usize>)> = Vec::new();
        for (i, p) in self.points.iter().enumerate() {
            match ranges.last_mut() {
                Some((name, range)) if *name == p.benchmark => range.end = i + 1,
                _ => ranges.push((p.benchmark.clone(), i..i + 1)),
            }
        }
        ranges
    }
}

/// Expands and executes `spec` on `runner`, forwarding every progress
/// event to `on_event`, then joins results onto points and computes the
/// per-benchmark Pareto frontiers.
///
/// # Errors
///
/// Propagates [`expand`] errors; execution itself is infallible.
pub fn run_sweep<F>(
    spec: SweepSpec,
    runner: &SuiteRunner,
    mut on_event: F,
) -> Result<ExploreRun, String>
where
    F: FnMut(&JobOutcome<'_>),
{
    let Expansion { points, jobs } = expand(&spec)?;
    let mut samples = vec![JobSample::default(); jobs.len()];
    let mut source_by_key: HashMap<CacheKey, &'static str> = HashMap::new();
    let report = runner.run_with_progress(&jobs, |o| {
        let sample = JobSample::from_outcome(&o);
        samples[o.index] = sample;
        source_by_key.insert(o.key, sample.source);
        on_event(&o);
    });

    let stats: Vec<FlowStats> = points.iter().map(|p| report.results[p.job].stats).collect();
    let sources: Vec<&'static str> = points
        .iter()
        .map(|p| source_by_key.get(&p.key).copied().unwrap_or("unknown"))
        .collect();

    let mut run = ExploreRun {
        spec,
        points,
        jobs,
        samples,
        stats,
        sources,
        frontier: Vec::new(),
        dominated_by: Vec::new(),
        report,
    };
    run.frontier = vec![false; run.points.len()];
    run.dominated_by = vec![None; run.points.len()];
    for (_, range) in run.benchmark_ranges() {
        let vectors: Vec<Vec<u64>> = range.clone().map(|i| run.objectives_of(i)).collect();
        let verdict = pareto::frontier(&vectors);
        for (local, global) in range.enumerate() {
            run.frontier[global] = verdict.on_frontier[local];
            run.dominated_by[global] = verdict.dominated_by[local].map(|j| j + global - local);
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn single_phase_points_collapse_to_one_job() {
        let s = spec::parse("benchmarks adder:4\nflows 1phi\nphases 3 4 6\n").unwrap();
        let e = expand(&s).unwrap();
        assert_eq!(e.points.len(), 3, "one point per grid coordinate");
        assert_eq!(e.jobs.len(), 1, "1phi ignores the phases axis");
        assert!(e.points.iter().all(|p| p.job == 0));
    }

    #[test]
    fn nphi_at_one_phase_is_the_single_phase_baseline() {
        let s = spec::parse("benchmarks adder:4\nflows 1phi nphi\nphases 1 4\n").unwrap();
        let e = expand(&s).unwrap();
        // Grid: 1phi@1, 1phi@4, nphi@1, nphi@4 — the first three share
        // the 1φ configuration fingerprint.
        assert_eq!(e.points.len(), 4);
        assert_eq!(e.jobs.len(), 2);
        assert_eq!(e.points[0].job, e.points[2].job);
    }

    #[test]
    fn distinct_axes_stay_distinct() {
        let s = spec::parse(
            "benchmarks adder:4\nflows t1\nphases 4\nopt none pre-opt\n\
             timing off on\nlibrary default cheap-dff\n",
        )
        .unwrap();
        let e = expand(&s).unwrap();
        assert_eq!(e.points.len(), 8);
        assert_eq!(e.jobs.len(), 8, "every coordinate is a distinct config");
        let labels: Vec<String> = e.points.iter().map(|p| p.config_label()).collect();
        assert!(labels.contains(&"t1@4".to_string()));
        assert!(labels.contains(&"t1@4+pre-opt+timing+cheap-dff".to_string()));
    }

    #[test]
    fn run_joins_results_and_frontier_onto_points() {
        let s = spec::parse("benchmarks adder:4\nflows 1phi t1\nphases 4\n").unwrap();
        let run = run_sweep(s, &SuiteRunner::new(2), |_| {}).unwrap();
        assert_eq!(run.points.len(), 2);
        assert_eq!(run.stats.len(), 2);
        assert!(run.sources.iter().all(|s| *s == "computed"));
        // Two points, four objectives: at least one must survive.
        assert!(run.frontier.iter().any(|f| *f));
        for i in 0..run.points.len() {
            assert_eq!(run.frontier[i], run.dominated_by[i].is_none());
            if let Some(w) = run.dominated_by[i] {
                assert!(run.frontier[w], "witness must be on the frontier");
                assert_eq!(
                    run.points[w].benchmark, run.points[i].benchmark,
                    "witness stays within the benchmark"
                );
            }
        }
    }
}
