//! The `EXPLORE_*.json` report, its validator, and the human renderings.
//!
//! Schema `"sfq-t1/explore"` version 1. The report is deliberately free
//! of wall-clock figures: every field is a pure function of the sweep
//! spec and the flow results, except the per-point `"source"` provenance
//! and the run-level `"cache"` accounting. [`strip_provenance`] blanks
//! exactly those, so a cold run and a warm `--cache-dir` rerun of the
//! same spec produce byte-identical normalized reports — the invariant
//! the warm-start tests and CI assert.
//!
//! Like the bench reports, the emitter validates its own output
//! ([`validate`], built on [`sfq_obs::json`]) before anything is
//! written to disk, so a schema drift fails the producer, not a later
//! consumer.

use crate::spec::{FLOW_TOKENS, LIBRARY_VARIANTS, OBJECTIVE_TOKENS, OPT_TOKENS};
use crate::sweep::ExploreRun;
use sfq_obs::json::{self, Value};
use std::fmt::Write as _;

/// Schema identifier of explore reports.
pub const EXPLORE_SCHEMA: &str = "sfq-t1/explore";
/// Current schema version; bump on any breaking format change.
pub const EXPLORE_SCHEMA_VERSION: u64 = 1;

/// Provenance labels a point may carry.
const SOURCES: [&str; 4] = ["memory", "disk", "computed", "unknown"];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report. One line per point, so line-oriented tooling
/// (and [`strip_provenance`]) can treat points atomically.
pub fn explore_report_json(run: &ExploreRun) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{EXPLORE_SCHEMA}\",");
    let _ = writeln!(out, "  \"schema_version\": {EXPLORE_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"sweep\": \"{}\",", esc(&run.spec.name));
    let objectives: Vec<String> = run
        .spec
        .objectives
        .iter()
        .map(|o| format!("\"{}\"", o.token()))
        .collect();
    let _ = writeln!(out, "  \"objectives\": [{}],", objectives.join(", "));
    let _ = writeln!(out, "  \"points\": {},", run.points.len());
    let _ = writeln!(out, "  \"unique_jobs\": {},", run.jobs.len());
    out.push_str("  \"benchmarks\": [\n");
    let ranges = run.benchmark_ranges();
    for (b, (benchmark, range)) in ranges.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"benchmark\": \"{}\",", esc(benchmark));
        let frontier_size = range.clone().filter(|&i| run.frontier[i]).count();
        let _ = writeln!(out, "      \"frontier_size\": {frontier_size},");
        out.push_str("      \"points\": [\n");
        for i in range.clone() {
            let p = &run.points[i];
            let s = &run.stats[i];
            let dominated_by = match run.dominated_by[i] {
                Some(w) => format!("\"{}\"", esc(&run.points[w].config_label())),
                None => "null".into(),
            };
            let _ = writeln!(
                out,
                "        {{\"config\": \"{}\", \"flow\": \"{}\", \"phases\": {}, \
                 \"opt\": \"{}\", \"timing\": {}, \"library\": \"{}\", \
                 \"fingerprint\": \"{:016x}-{:016x}\", \"source\": \"{}\", \
                 \"gates\": {}, \"depth_cycles\": {}, \"dffs\": {}, \
                 \"splitters\": {}, \"cell_area\": {}, \"area\": {}, \
                 \"t1_used\": {}, \"frontier\": {}, \"dominated_by\": {}}}{}",
                esc(&p.config_label()),
                p.flow.token(),
                p.phases,
                p.opt,
                p.timing,
                p.library,
                p.key.aig,
                p.key.setup,
                run.sources[i],
                s.gates,
                s.depth_cycles.max(0),
                s.dffs,
                s.splitters,
                s.cell_area,
                s.area,
                s.t1_used,
                run.frontier[i],
                dominated_by,
                if i + 1 == range.end { "" } else { "," }
            );
        }
        out.push_str("      ]\n");
        let _ = writeln!(
            out,
            "    }}{}",
            if b + 1 == ranges.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    let c = run.cache();
    let _ = writeln!(
        out,
        "  \"cache\": {{\"memory_hits\": {}, \"disk_hits\": {}, \"flow_runs\": {}, \
         \"disk_entries\": {}}}",
        c.memory_hits, c.disk_hits, c.misses, c.disk.entries
    );
    out.push_str("}\n");
    out
}

/// Blanks the result-provenance fields — every per-point `"source"`
/// value and the run-level `"cache"` line — which are the only report
/// fields that may differ between a cold run and a warm rerun of the
/// same spec. Everything else must be byte-identical.
pub fn strip_provenance(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if line.trim_start().starts_with("\"cache\":") {
            out.push_str("  \"cache\": {}\n");
            continue;
        }
        const NEEDLE: &str = "\"source\": \"";
        if let Some(at) = line.find(NEEDLE) {
            let value_start = at + NEEDLE.len();
            if let Some(len) = line[value_start..].find('"') {
                out.push_str(&line[..value_start]);
                out.push('-');
                out.push_str(&line[value_start + len..]);
                out.push('\n');
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn get_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer '{key}'"))
}

fn get_str<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string '{key}'"))
}

fn get_bool(v: &Value, key: &str, ctx: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("{ctx}: missing or non-boolean '{key}'"))
}

/// Validates an explore report against schema version 1: structure,
/// field types, token vocabularies, fingerprint shape, point counts,
/// frontier-size consistency, non-empty frontiers, and witness
/// integrity (every pruned point's `dominated_by` names a frontier
/// point of the same benchmark; frontier points carry `null`).
pub fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("explore report is not JSON: {e}"))?;
    let schema = get_str(&doc, "schema", "report")?;
    if schema != EXPLORE_SCHEMA {
        return Err(format!(
            "schema mismatch: got '{schema}', want '{EXPLORE_SCHEMA}'"
        ));
    }
    let version = get_u64(&doc, "schema_version", "report")?;
    if version != EXPLORE_SCHEMA_VERSION {
        return Err(format!(
            "schema_version mismatch: got {version}, want {EXPLORE_SCHEMA_VERSION}"
        ));
    }
    get_str(&doc, "sweep", "report")?;
    let objectives = doc
        .get("objectives")
        .and_then(Value::as_arr)
        .ok_or("report: missing 'objectives' array")?;
    if objectives.is_empty() {
        return Err("report: empty 'objectives'".into());
    }
    for o in objectives {
        let token = o.as_str().ok_or("report: non-string objective")?;
        if !OBJECTIVE_TOKENS.contains(&token) {
            return Err(format!("report: unknown objective '{token}'"));
        }
    }
    let points_total = get_u64(&doc, "points", "report")?;
    let unique_jobs = get_u64(&doc, "unique_jobs", "report")?;
    if unique_jobs == 0 || unique_jobs > points_total {
        return Err(format!(
            "report: unique_jobs {unique_jobs} out of range for {points_total} points"
        ));
    }
    doc.get("cache")
        .filter(|c| matches!(c, Value::Obj(_)))
        .ok_or("report: missing 'cache' object")?;

    let benchmarks = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .ok_or("report: missing 'benchmarks' array")?;
    if benchmarks.is_empty() {
        return Err("report: empty 'benchmarks'".into());
    }
    let mut seen_points = 0u64;
    for b in benchmarks {
        let name = get_str(b, "benchmark", "benchmark entry")?;
        let ctx = format!("benchmark '{name}'");
        let frontier_size = get_u64(b, "frontier_size", &ctx)?;
        let points = b
            .get("points")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{ctx}: missing 'points' array"))?;
        if points.is_empty() {
            return Err(format!("{ctx}: no points"));
        }
        seen_points += points.len() as u64;
        let mut frontier_configs: Vec<&str> = Vec::new();
        let mut counted = 0u64;
        for p in points {
            let config = get_str(p, "config", &ctx)?;
            let pctx = format!("{ctx} point '{config}'");
            let flow = get_str(p, "flow", &pctx)?;
            if !FLOW_TOKENS.contains(&flow) {
                return Err(format!("{pctx}: unknown flow '{flow}'"));
            }
            get_u64(p, "phases", &pctx)?;
            let opt = get_str(p, "opt", &pctx)?;
            if !OPT_TOKENS.contains(&opt) {
                return Err(format!("{pctx}: unknown opt '{opt}'"));
            }
            get_bool(p, "timing", &pctx)?;
            let library = get_str(p, "library", &pctx)?;
            if !LIBRARY_VARIANTS.contains(&library) {
                return Err(format!("{pctx}: unknown library '{library}'"));
            }
            let fp = get_str(p, "fingerprint", &pctx)?;
            let halves: Vec<&str> = fp.split('-').collect();
            if halves.len() != 2
                || halves
                    .iter()
                    .any(|h| h.len() != 16 || !h.chars().all(|c| c.is_ascii_hexdigit()))
            {
                return Err(format!("{pctx}: malformed fingerprint '{fp}'"));
            }
            let source = get_str(p, "source", &pctx)?;
            if !SOURCES.contains(&source) && source != "-" {
                return Err(format!("{pctx}: unknown source '{source}'"));
            }
            for key in [
                "gates",
                "depth_cycles",
                "dffs",
                "splitters",
                "cell_area",
                "area",
                "t1_used",
            ] {
                get_u64(p, key, &pctx)?;
            }
            if get_bool(p, "frontier", &pctx)? {
                counted += 1;
                frontier_configs.push(config);
                if !matches!(p.get("dominated_by"), Some(Value::Null)) {
                    return Err(format!("{pctx}: frontier point with a dominator"));
                }
            } else if p.get("dominated_by").and_then(Value::as_str).is_none() {
                return Err(format!("{pctx}: pruned point without a witness"));
            }
        }
        if counted != frontier_size {
            return Err(format!(
                "{ctx}: frontier_size {frontier_size} but {counted} frontier points"
            ));
        }
        if counted == 0 {
            return Err(format!("{ctx}: empty frontier"));
        }
        for p in points {
            if let Some(witness) = p.get("dominated_by").and_then(Value::as_str) {
                if !frontier_configs.contains(&witness) {
                    return Err(format!(
                        "{ctx}: witness '{witness}' is not a frontier point"
                    ));
                }
            }
        }
    }
    if seen_points != points_total {
        return Err(format!(
            "report: 'points' says {points_total} but benchmarks list {seen_points}"
        ));
    }
    Ok(())
}

/// Human frontier table: per benchmark, the surviving configurations
/// with their objective values, plus a pruned-point count.
pub fn frontier_table(run: &ExploreRun) -> String {
    let objectives: Vec<&str> = run.spec.objectives.iter().map(|o| o.token()).collect();
    let mut out = String::new();
    for (benchmark, range) in run.benchmark_ranges() {
        let total = range.len();
        let on: Vec<usize> = range.clone().filter(|&i| run.frontier[i]).collect();
        let _ = writeln!(
            out,
            "{benchmark}: frontier {} of {} points (objectives: {})",
            on.len(),
            total,
            objectives.join(", ")
        );
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>8} {:>8} {:>8}  source",
            "config", "gates", "depth", "dffs", "area"
        );
        for i in on {
            let s = &run.stats[i];
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>8} {:>8} {:>8}  {}",
                run.points[i].config_label(),
                s.gates,
                s.depth_cycles.max(0),
                s.dffs,
                s.area,
                run.sources[i]
            );
        }
        let pruned = range.filter(|&i| !run.frontier[i]).count();
        if pruned > 0 {
            let _ = writeln!(out, "  ({pruned} dominated points pruned)");
        }
    }
    out
}

/// CSV rendering of every point (frontier and pruned alike).
pub fn points_csv(run: &ExploreRun) -> String {
    let mut out = String::from(
        "benchmark,config,flow,phases,opt,timing,library,gates,depth_cycles,dffs,\
         splitters,cell_area,area,t1_used,frontier,dominated_by\n",
    );
    for (i, p) in run.points.iter().enumerate() {
        let s = &run.stats[i];
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.benchmark,
            p.config_label(),
            p.flow.token(),
            p.phases,
            p.opt,
            p.timing,
            p.library,
            s.gates,
            s.depth_cycles.max(0),
            s.dffs,
            s.splitters,
            s.cell_area,
            s.area,
            s.t1_used,
            run.frontier[i],
            run.dominated_by[i]
                .map(|w| run.points[w].config_label())
                .unwrap_or_default()
        );
    }
    out
}

/// End-of-sweep summary line; the `N flow runs` figure is what warm-start
/// CI greps for (a warm rerun must report `0 flow runs`).
pub fn explore_summary(run: &ExploreRun) -> String {
    format!(
        "explore: {} points, {} unique jobs on {} workers in {:.1?} \
         ({} cache hits, {} flow runs)",
        run.points.len(),
        run.jobs.len(),
        run.report.workers,
        run.report.elapsed,
        run.cache().hits(),
        run.cache().misses
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use crate::sweep::run_sweep;
    use sfq_engine::SuiteRunner;

    fn small_run() -> ExploreRun {
        let s = spec::parse("sweep unit\nbenchmarks adder:4 c6288\nflows 1phi t1\nphases 3 4\n")
            .unwrap();
        run_sweep(s, &SuiteRunner::new(2), |_| {}).unwrap()
    }

    #[test]
    fn report_validates_and_counts_points() {
        let run = small_run();
        let text = explore_report_json(&run);
        validate(&text).expect("emitted report must validate");
        let doc = sfq_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("points").unwrap().as_u64(), Some(8));
        assert_eq!(doc.get("unique_jobs").unwrap().as_u64(), Some(6));
        assert_eq!(doc.get("benchmarks").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn validator_rejects_tampering() {
        let run = small_run();
        let text = explore_report_json(&run);
        assert!(validate(&text.replace("sfq-t1/explore", "sfq-t1/other")).is_err());
        assert!(validate(&text.replace("\"frontier\": true", "\"frontier\": false")).is_err());
        assert!(validate(&text.replace("\"flow\": \"t1\"", "\"flow\": \"t2\"")).is_err());
        assert!(validate("{}").is_err());
    }

    #[test]
    fn strip_provenance_blanks_only_sources_and_cache() {
        let run = small_run();
        let text = explore_report_json(&run);
        let stripped = strip_provenance(&text);
        assert!(stripped.contains("\"source\": \"-\""));
        assert!(!stripped.contains("computed"));
        assert!(stripped.contains("\"cache\": {}"));
        validate(&stripped).expect("normalized report still validates");
        // Idempotent: stripping twice changes nothing.
        assert_eq!(strip_provenance(&stripped), stripped);
    }

    #[test]
    fn human_renderings_cover_every_benchmark() {
        let run = small_run();
        let table = frontier_table(&run);
        assert!(table.contains("adder:4: frontier"));
        assert!(table.contains("c6288: frontier"));
        let csv = points_csv(&run);
        assert_eq!(csv.lines().count(), 1 + run.points.len());
        assert!(csv.starts_with("benchmark,config,flow,phases"));
        let summary = explore_summary(&run);
        assert!(summary.contains("8 points, 6 unique jobs"), "{summary}");
    }
}
