//! Multi-objective non-domination analysis.
//!
//! All objectives are *minimized* and compared as exact integers — no
//! floating-point scalarization, no weights, no tolerance knobs. Point
//! `a` **dominates** point `b` when `a` is no worse than `b` in every
//! objective and strictly better in at least one; the **frontier** is
//! the set of points dominated by nobody. Two points with *identical*
//! objective vectors do not dominate each other, so ties survive
//! together — which is what makes frontier membership a pure function
//! of the multiset of vectors, invariant under input permutation (the
//! property the `pareto_prop` suite checks).
//!
//! Every pruned point carries a *witness*: a frontier point that
//! dominates it, chosen deterministically (lexicographically smallest
//! objective vector, then smallest index), so reports can answer "why
//! is this configuration not on the frontier?" with a concrete better
//! configuration instead of a bare boolean.

/// Whether `a` dominates `b`: `a[i] <= b[i]` for all objectives and
/// `a[i] < b[i]` for at least one. Both slices must have equal length.
pub fn dominates(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// The result of a non-domination pass over one group of points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    /// Whether each input point is on the Pareto frontier.
    pub on_frontier: Vec<bool>,
    /// For each pruned point, the index of its witness — a frontier
    /// point that dominates it. `None` exactly for frontier points.
    pub dominated_by: Vec<Option<usize>>,
}

impl Frontier {
    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.on_frontier.iter().filter(|f| **f).count()
    }

    /// Whether the frontier is empty (only for zero input points).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the Pareto frontier of `vectors` (one objective vector per
/// point, all minimized). Quadratic in the number of points, which is
/// exact and more than fast enough for sweep-sized inputs.
pub fn frontier(vectors: &[Vec<u64>]) -> Frontier {
    let n = vectors.len();
    let on_frontier: Vec<bool> = (0..n)
        .map(|i| !vectors.iter().any(|other| dominates(other, &vectors[i])))
        .collect();
    let dominated_by: Vec<Option<usize>> = (0..n)
        .map(|i| {
            if on_frontier[i] {
                return None;
            }
            // Deterministic witness: among frontier dominators, the one
            // with the lexicographically smallest vector (then index).
            (0..n)
                .filter(|&j| on_frontier[j] && dominates(&vectors[j], &vectors[i]))
                .min_by(|&a, &b| vectors[a].cmp(&vectors[b]).then(a.cmp(&b)))
        })
        .collect();
    Frontier {
        on_frontier,
        dominated_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_is_strict_somewhere() {
        assert!(dominates(&[1, 2], &[1, 3]));
        assert!(dominates(&[0, 0], &[5, 5]));
        assert!(
            !dominates(&[1, 2], &[1, 2]),
            "equal vectors do not dominate"
        );
        assert!(!dominates(&[1, 3], &[2, 2]), "trade-offs do not dominate");
    }

    #[test]
    fn frontier_keeps_trade_offs_and_ties() {
        // (gates, depth): two trade-off points, one duplicate, one loser.
        let f = frontier(&[
            vec![10, 2],
            vec![5, 4],
            vec![10, 2], // tie with point 0: both survive
            vec![11, 5], // dominated by everything
        ]);
        assert_eq!(f.on_frontier, [true, true, true, false]);
        assert_eq!(f.len(), 3);
        // Witness has the lexicographically smallest dominating vector.
        assert_eq!(f.dominated_by, [None, None, None, Some(1)]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let f = frontier(&[vec![7, 7, 7]]);
        assert_eq!(f.on_frontier, [true]);
        assert_eq!(f.dominated_by, [None]);
    }

    #[test]
    fn empty_input_yields_empty_frontier() {
        let f = frontier(&[]);
        assert!(f.is_empty());
        assert!(f.on_frontier.is_empty());
    }
}
