//! Property tests of [`sfq_explore::pareto`]: every frontier point is
//! non-dominated, every pruned point carries a frontier witness that
//! actually dominates it, and frontier membership (plus the witness's
//! objective vector) is invariant under permutation of the input.

use proptest::prelude::*;
use sfq_explore::pareto::{dominates, frontier};

/// Three-objective vectors over a small value range, so domination and
/// exact ties are both common.
fn vectors(points: &[(u64, u64, u64)]) -> Vec<Vec<u64>> {
    points.iter().map(|&(a, b, c)| vec![a, b, c]).collect()
}

/// Deterministic Fisher–Yates permutation of `0..n` from `seed`.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        perm.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn frontier_points_are_non_dominated(
        points in prop::collection::vec((0u64..8, 0u64..8, 0u64..8), 1..40),
    ) {
        let vectors = vectors(&points);
        let f = frontier(&vectors);
        prop_assert!(!f.is_empty(), "a non-empty input has a non-empty frontier");
        for i in 0..vectors.len() {
            if f.on_frontier[i] {
                prop_assert!(
                    vectors.iter().all(|other| !dominates(other, &vectors[i])),
                    "frontier point {i} is dominated"
                );
                prop_assert!(f.dominated_by[i].is_none());
            }
        }
    }

    #[test]
    fn pruned_points_have_dominating_frontier_witnesses(
        points in prop::collection::vec((0u64..8, 0u64..8, 0u64..8), 1..40),
    ) {
        let vectors = vectors(&points);
        let f = frontier(&vectors);
        for i in 0..vectors.len() {
            if !f.on_frontier[i] {
                let w = f.dominated_by[i];
                prop_assert!(w.is_some(), "pruned point {i} has no witness");
                let w = w.unwrap();
                prop_assert!(f.on_frontier[w], "witness {w} is not on the frontier");
                prop_assert!(
                    dominates(&vectors[w], &vectors[i]),
                    "witness {w} does not dominate {i}"
                );
            }
        }
    }

    #[test]
    fn membership_is_permutation_invariant(
        points in prop::collection::vec((0u64..8, 0u64..8, 0u64..8), 1..40),
        seed in any::<u64>(),
    ) {
        let vectors = vectors(&points);
        let f = frontier(&vectors);
        let perm = permutation(vectors.len(), seed | 1);
        let permuted: Vec<Vec<u64>> = perm.iter().map(|&i| vectors[i].clone()).collect();
        let g = frontier(&permuted);
        for (new_pos, &old_pos) in perm.iter().enumerate() {
            prop_assert_eq!(
                g.on_frontier[new_pos], f.on_frontier[old_pos],
                "membership of point {} changed under permutation", old_pos
            );
            // The witness index may differ, but the witness's objective
            // vector is determined by the multiset of points alone.
            let before = f.dominated_by[old_pos].map(|w| vectors[w].clone());
            let after = g.dominated_by[new_pos].map(|w| permuted[w].clone());
            prop_assert_eq!(before, after);
        }
    }
}
