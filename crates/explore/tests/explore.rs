//! End-to-end sweep tests: fingerprint deduplication is reflected in
//! progress totals, a warm disk-backed rerun performs zero flow
//! computations, and cold/warm reports are byte-identical modulo the
//! provenance fields.

use sfq_engine::{DiskStore, ResultCache, SuiteRunner};
use sfq_explore::report::{explore_report_json, strip_provenance, validate};
use sfq_explore::spec;
use sfq_explore::sweep::run_sweep;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfq-explore-{name}-{}", std::process::id()))
}

/// 12 grid points over 10 unique jobs: the 1phi flow ignores the phases
/// axis, so its points collapse pairwise.
const SPEC: &str = "sweep warmtest\nbenchmarks adder:6\nflows 1phi nphi t1\n\
                    phases 3 4\nopt none dff-opt\n";

#[test]
fn deduplicated_jobs_are_counted_once_in_progress_totals() {
    let s = spec::parse(SPEC).unwrap();
    let mut events = 0usize;
    let mut total = 0usize;
    let run = run_sweep(s, &SuiteRunner::new(2), |o| {
        events += 1;
        total = o.total;
    })
    .unwrap();
    assert_eq!(run.points.len(), 12);
    assert_eq!(run.jobs.len(), 10, "1phi collapses across the phases axis");
    assert_eq!(events, 10, "one progress event per unique job");
    assert_eq!(total, 10, "progress totals count unique jobs, not points");
    assert_eq!(run.cache().misses, 10, "each unique job computes once");
    // Collapsed points share their job's result and provenance.
    let one_phi: Vec<usize> = (0..run.points.len())
        .filter(|&i| run.points[i].opt == "none" && run.points[i].flow.token() == "1phi")
        .collect();
    assert_eq!(one_phi.len(), 2);
    assert_eq!(run.points[one_phi[0]].job, run.points[one_phi[1]].job);
    assert_eq!(run.stats[one_phi[0]], run.stats[one_phi[1]]);
}

#[test]
fn warm_rerun_recomputes_nothing_and_reports_identically() {
    let dir = tmp("warm");
    let _ = std::fs::remove_dir_all(&dir);
    let open = || {
        Arc::new(ResultCache::with_backing(Arc::new(
            DiskStore::open(&dir).expect("store opens"),
        )))
    };

    let cold = run_sweep(
        spec::parse(SPEC).unwrap(),
        &SuiteRunner::new(2).with_store(open()),
        |_| {},
    )
    .unwrap();
    assert_eq!(
        cold.cache().misses,
        10,
        "cold run computes every unique job"
    );

    // Fresh memory tier over the same disk store: the rerun must be
    // served entirely from disk — zero flow computations.
    let warm = run_sweep(
        spec::parse(SPEC).unwrap(),
        &SuiteRunner::new(2).with_store(open()),
        |_| {},
    )
    .unwrap();
    assert_eq!(
        warm.cache().misses,
        0,
        "warm rerun performs zero flow computations"
    );
    assert_eq!(warm.cache().disk_hits, 10);
    assert!(
        warm.sources.iter().all(|s| *s == "disk"),
        "{:?}",
        warm.sources
    );

    let cold_text = explore_report_json(&cold);
    let warm_text = explore_report_json(&warm);
    validate(&cold_text).expect("cold report validates");
    validate(&warm_text).expect("warm report validates");
    assert_ne!(
        cold_text, warm_text,
        "provenance fields differ cold vs warm"
    );
    assert_eq!(
        strip_provenance(&cold_text),
        strip_provenance(&warm_text),
        "reports are byte-identical modulo source-tier fields"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
