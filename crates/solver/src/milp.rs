//! Mixed-integer linear programming by branch and bound.
//!
//! Sits on top of [`crate::simplex`] and provides the exact engine for the
//! paper's ILP phase-assignment formulation (§II-B). Variables are
//! non-negative; integrality is declared per variable; optional upper bounds
//! are turned into constraints.
//!
//! Intended for the instance sizes where exactness matters (unit tests,
//! cross-validation of the scalable heuristic, small benchmark circuits).
//!
//! # Examples
//!
//! ```
//! use sfq_solver::milp::MilpProblem;
//! use sfq_solver::linear::{LinExpr, Sense};
//!
//! // Knapsack-ish: max 5a + 4b s.t. 6a + 4b <= 9, a,b binary → a=0,b=2? No:
//! // b <= 1. Optimum a=1, b=0 (value 5) vs a=0,b=1 (value 4) → a=1.
//! let mut p = MilpProblem::new();
//! let a = p.add_int_var(0.0, Some(1.0));
//! let b = p.add_int_var(0.0, Some(1.0));
//! p.add_constraint(LinExpr::var(a) * 6.0 + LinExpr::var(b) * 4.0, Sense::Le, 9.0);
//! p.set_objective(LinExpr::var(a) * -5.0 + LinExpr::var(b) * -4.0);
//! let sol = p.solve().expect("feasible");
//! assert_eq!(sol.int_value(a), 1);
//! assert_eq!(sol.int_value(b), 0);
//! ```

use crate::linear::{Constraint, LinExpr, Sense, VarId};
use crate::simplex::{solve_lp, LpOutcome, EPS};

/// Integrality tolerance: an LP value this close to an integer is integral.
const INT_EPS: f64 = 1e-6;

/// A MILP model under construction.
#[derive(Debug, Clone, Default)]
pub struct MilpProblem {
    num_vars: usize,
    integer: Vec<bool>,
    lower: Vec<f64>,
    upper: Vec<Option<f64>>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
    /// Hard cap on explored branch-and-bound nodes (safety valve).
    pub node_limit: usize,
}

/// A feasible MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Objective value (minimization).
    pub objective: f64,
    /// Variable values indexed by `VarId`.
    pub values: Vec<f64>,
}

impl MilpSolution {
    /// Rounds the value of an integer variable to `i64`.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }
}

/// Errors from the MILP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MilpError {
    /// No feasible assignment exists.
    Infeasible,
    /// The relaxation is unbounded (model bug for our use cases).
    Unbounded,
    /// The node limit was exhausted before proving optimality.
    NodeLimit,
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => f.write_str("model is infeasible"),
            MilpError::Unbounded => f.write_str("relaxation is unbounded"),
            MilpError::NodeLimit => f.write_str("node limit exhausted before optimality"),
        }
    }
}

impl std::error::Error for MilpError {}

impl MilpProblem {
    /// Creates an empty model.
    pub fn new() -> Self {
        MilpProblem {
            node_limit: 200_000,
            ..Default::default()
        }
    }

    /// Adds a continuous variable with lower bound `lb` (≥ 0) and optional
    /// upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `lb < 0` (the simplex core assumes non-negative variables)
    /// or `ub < lb`.
    pub fn add_var(&mut self, lb: f64, ub: Option<f64>) -> VarId {
        assert!(lb >= 0.0, "variables are non-negative; shift your model");
        if let Some(u) = ub {
            assert!(u >= lb, "upper bound below lower bound");
        }
        let id = VarId(self.num_vars);
        self.num_vars += 1;
        self.integer.push(false);
        self.lower.push(lb);
        self.upper.push(ub);
        id
    }

    /// Adds an integer variable with the given bounds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MilpProblem::add_var`].
    pub fn add_int_var(&mut self, lb: f64, ub: Option<f64>) -> VarId {
        let id = self.add_var(lb, ub);
        self.integer[id.0] = true;
        id
    }

    /// Adds the constraint `expr (sense) rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, sense: Sense, rhs: f64) {
        self.constraints.push(Constraint::new(expr, sense, rhs));
    }

    /// Sets the minimization objective.
    pub fn set_objective(&mut self, obj: LinExpr) {
        self.objective = obj;
    }

    /// Number of variables declared so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Solves the model to optimality.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] if no assignment satisfies the constraints,
    /// [`MilpError::Unbounded`] if the LP relaxation is unbounded, and
    /// [`MilpError::NodeLimit`] if branch and bound exceeds `node_limit`.
    pub fn solve(&self) -> Result<MilpSolution, MilpError> {
        // Materialize variable bounds as constraints once.
        let mut base = self.constraints.clone();
        for i in 0..self.num_vars {
            if self.lower[i] > 0.0 {
                base.push(Constraint::new(
                    LinExpr::var(VarId(i)),
                    Sense::Ge,
                    self.lower[i],
                ));
            }
            if let Some(u) = self.upper[i] {
                base.push(Constraint::new(LinExpr::var(VarId(i)), Sense::Le, u));
            }
        }

        let mut best: Option<MilpSolution> = None;
        // DFS stack of extra bound constraints.
        let mut stack: Vec<Vec<Constraint>> = vec![vec![]];
        let mut nodes = 0usize;
        while let Some(extra) = stack.pop() {
            nodes += 1;
            if nodes > self.node_limit {
                return best.ok_or(MilpError::NodeLimit);
            }
            let mut cons = base.clone();
            cons.extend(extra.iter().cloned());
            let outcome = solve_lp(self.num_vars, &cons, &self.objective);
            let sol = match outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => {
                    // Unbounded relaxation at the root is a model error; in a
                    // child it cannot happen (children are more constrained).
                    if extra.is_empty() {
                        return Err(MilpError::Unbounded);
                    }
                    continue;
                }
                LpOutcome::Optimal(s) => s,
            };
            // Bound: prune if not better than incumbent.
            if let Some(b) = &best {
                if sol.objective >= b.objective - EPS {
                    continue;
                }
            }
            // Find the most fractional integer variable.
            let mut branch_var = None;
            let mut branch_frac = 0.0;
            for i in 0..self.num_vars {
                if self.integer[i] {
                    let v = sol.values[i];
                    let frac = (v - v.round()).abs();
                    if frac > INT_EPS && frac > branch_frac {
                        branch_frac = frac;
                        branch_var = Some(i);
                    }
                }
            }
            match branch_var {
                None => {
                    // Integral (round off numerical fuzz on integer vars).
                    let mut values = sol.values.clone();
                    for (v, &is_int) in values.iter_mut().zip(&self.integer) {
                        if is_int {
                            *v = v.round();
                        }
                    }
                    let objective = self.objective.eval(&values);
                    if best.as_ref().is_none_or(|b| objective < b.objective - EPS) {
                        best = Some(MilpSolution { objective, values });
                    }
                }
                Some(i) => {
                    let v = sol.values[i];
                    let floor = v.floor();
                    // Explore the side closer to the LP value first (pushed
                    // last → popped first).
                    let mut lo = extra.clone();
                    lo.push(Constraint::new(LinExpr::var(VarId(i)), Sense::Le, floor));
                    let mut hi = extra.clone();
                    hi.push(Constraint::new(
                        LinExpr::var(VarId(i)),
                        Sense::Ge,
                        floor + 1.0,
                    ));
                    if v - floor > 0.5 {
                        stack.push(lo);
                        stack.push(hi);
                    } else {
                        stack.push(hi);
                        stack.push(lo);
                    }
                }
            }
        }
        best.ok_or(MilpError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passthrough() {
        let mut p = MilpProblem::new();
        let x = p.add_var(0.0, Some(4.0));
        p.set_objective(LinExpr::var(x) * -1.0);
        let s = p.solve().unwrap();
        assert!((s.values[x.0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_lp_forced_integer() {
        // max x s.t. 2x <= 5, x integer → x = 2.
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, None);
        p.add_constraint(LinExpr::var(x) * 2.0, Sense::Le, 5.0);
        p.set_objective(LinExpr::var(x) * -1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
    }

    #[test]
    fn binary_knapsack() {
        // max 10a + 6b + 4c s.t. a + b + c <= 2, 5a + 4b + 3c <= 8; binaries.
        let mut p = MilpProblem::new();
        let a = p.add_int_var(0.0, Some(1.0));
        let b = p.add_int_var(0.0, Some(1.0));
        let c = p.add_int_var(0.0, Some(1.0));
        p.add_constraint(
            LinExpr::var(a) + LinExpr::var(b) + LinExpr::var(c),
            Sense::Le,
            2.0,
        );
        p.add_constraint(
            LinExpr::var(a) * 5.0 + LinExpr::var(b) * 4.0 + LinExpr::var(c) * 3.0,
            Sense::Le,
            8.0,
        );
        p.set_objective(LinExpr::var(a) * -10.0 + LinExpr::var(b) * -6.0 + LinExpr::var(c) * -4.0);
        let s = p.solve().unwrap();
        assert!(
            (s.objective + 14.0).abs() < 1e-5,
            "objective {}",
            s.objective
        );
        assert_eq!(s.int_value(a), 1);
        assert_eq!(s.int_value(c), 1);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6 with x integer → infeasible.
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, None);
        p.add_constraint(LinExpr::var(x), Sense::Ge, 0.4);
        p.add_constraint(LinExpr::var(x), Sense::Le, 0.6);
        assert_eq!(p.solve(), Err(MilpError::Infeasible));
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y s.t. y >= x - 2.5, y >= 2.5 - x, x integer in [0,5]:
        // best integer x is 2 or 3 giving y = 0.5.
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, Some(5.0));
        let y = p.add_var(0.0, None);
        p.add_constraint(LinExpr::var(y) - LinExpr::var(x), Sense::Ge, -2.5);
        p.add_constraint(LinExpr::var(y) + LinExpr::var(x), Sense::Ge, 2.5);
        p.set_objective(LinExpr::var(y));
        let s = p.solve().unwrap();
        assert!((s.objective - 0.5).abs() < 1e-5);
    }

    #[test]
    fn equality_with_integers() {
        // x + y == 7, x - y == 1 over integers → (4, 3).
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, None);
        let y = p.add_int_var(0.0, None);
        p.add_constraint(LinExpr::var(x) + LinExpr::var(y), Sense::Eq, 7.0);
        p.add_constraint(LinExpr::var(x) - LinExpr::var(y), Sense::Eq, 1.0);
        p.set_objective(LinExpr::var(x));
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(x), 4);
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn scheduling_with_ceil_linearization() {
        // The DFF-count linearization used by phase assignment:
        // min d s.t. n*d >= s_j - s_i - n with n = 4, s_j - s_i = 9
        // → d >= 5/4 → d = 2 (i.e. floor((9-1)/4) = 2).
        let mut p = MilpProblem::new();
        let d = p.add_int_var(0.0, None);
        p.add_constraint(LinExpr::var(d) * 4.0, Sense::Ge, 9.0 - 4.0);
        p.set_objective(LinExpr::var(d));
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(d), 2);
    }

    #[test]
    fn respects_lower_bounds() {
        let mut p = MilpProblem::new();
        let x = p.add_int_var(3.0, Some(10.0));
        p.set_objective(LinExpr::var(x));
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(x), 3);
    }
}
