//! Two-phase primal simplex on a dense tableau.
//!
//! This is the LP engine underneath the branch-and-bound MILP solver used for
//! exact multiphase phase assignment (the paper uses Google OR-Tools; we
//! build the solver ourselves — see DESIGN.md §2). Variables are
//! non-negative; general bounds are modelled by the caller (the MILP layer
//! adds explicit bound constraints).
//!
//! The implementation favours clarity and numerical robustness (Bland's rule
//! on ties, explicit tolerance) over speed: exact solves are only run on
//! instances small enough for a dense tableau.
//!
//! # Examples
//!
//! ```
//! use sfq_solver::linear::{Constraint, LinExpr, Sense, VarId};
//! use sfq_solver::simplex::{solve_lp, LpOutcome};
//!
//! // minimize -x - y  s.t. x + y <= 4, x <= 2, x,y >= 0  →  optimum -4.
//! let x = VarId(0);
//! let y = VarId(1);
//! let cons = vec![
//!     Constraint::new(LinExpr::var(x) + LinExpr::var(y), Sense::Le, 4.0),
//!     Constraint::new(LinExpr::var(x), Sense::Le, 2.0),
//! ];
//! let obj = LinExpr::var(x) * -1.0 + LinExpr::var(y) * -1.0;
//! match solve_lp(2, &cons, &obj) {
//!     LpOutcome::Optimal(sol) => assert!((sol.objective - -4.0).abs() < 1e-7),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

use crate::linear::{Constraint, LinExpr, Sense};

/// Numerical tolerance used throughout the solver.
pub const EPS: f64 = 1e-8;

/// A primal solution of an LP.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (of the *minimization*).
    pub objective: f64,
    /// Values of the structural variables, indexed by `VarId`.
    pub values: Vec<f64>,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Solves `minimize obj s.t. constraints, x >= 0` by two-phase simplex.
///
/// `num_vars` is the number of structural variables; every `VarId` mentioned
/// in the constraints and objective must be smaller.
///
/// # Panics
///
/// Panics if a constraint or the objective references `VarId(i)` with
/// `i >= num_vars`.
pub fn solve_lp(num_vars: usize, constraints: &[Constraint], obj: &LinExpr) -> LpOutcome {
    Tableau::build(num_vars, constraints, obj).solve()
}

struct Tableau {
    /// rows x cols matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (phase-2 costs), length = cols.
    cost: Vec<f64>,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    num_structural: usize,
    num_rows: usize,
    /// Total columns excluding RHS.
    num_cols: usize,
    artificial_start: usize,
}

impl Tableau {
    fn build(num_vars: usize, constraints: &[Constraint], obj: &LinExpr) -> Self {
        let m = constraints.len();
        // Count slack columns (one per inequality) and artificial columns.
        let mut num_slack = 0;
        for c in constraints {
            if !matches!(c.sense, Sense::Eq) {
                num_slack += 1;
            }
        }
        let artificial_start = num_vars + num_slack;
        let num_cols = artificial_start + m; // worst case: one artificial per row
        let mut a = vec![vec![0.0; num_cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = num_vars;
        let mut art_idx = artificial_start;

        for (i, c) in constraints.iter().enumerate() {
            for (v, coeff) in c.expr.terms() {
                assert!(v.0 < num_vars, "constraint references unknown variable");
                a[i][v.0] = coeff;
            }
            a[i][num_cols] = c.rhs;
            let mut sense = c.sense;
            // Normalize to non-negative RHS.
            if a[i][num_cols] < 0.0 {
                for x in a[i].iter_mut() {
                    *x = -*x;
                }
                sense = match sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
            match sense {
                Sense::Le => {
                    a[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge => {
                    a[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    a[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Sense::Eq => {
                    a[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }

        let mut cost = vec![0.0; num_cols];
        for (v, coeff) in obj.terms() {
            assert!(v.0 < num_vars, "objective references unknown variable");
            cost[v.0] = coeff;
        }

        Tableau {
            a,
            cost,
            basis,
            num_structural: num_vars,
            num_rows: m,
            num_cols,
            artificial_start,
        }
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1: minimize sum of artificials.
        let has_artificials = self.basis.iter().any(|&b| b >= self.artificial_start);
        if has_artificials {
            let phase1_cost: Vec<f64> = (0..self.num_cols)
                .map(|j| if j >= self.artificial_start { 1.0 } else { 0.0 })
                .collect();
            match self.run(&phase1_cost) {
                SimplexEnd::Optimal(value) => {
                    if value > EPS {
                        return LpOutcome::Infeasible;
                    }
                }
                SimplexEnd::Unbounded => unreachable!("phase 1 objective is bounded below by 0"),
            }
            // Drive any artificial still in the basis out (degenerate rows).
            for row in 0..self.num_rows {
                if self.basis[row] >= self.artificial_start {
                    let pivot_col =
                        (0..self.artificial_start).find(|&j| self.a[row][j].abs() > EPS);
                    match pivot_col {
                        Some(j) => self.pivot(row, j),
                        None => {
                            // Row is all zeros over real columns: redundant.
                            // Leave the artificial basic at value 0; it can
                            // never become positive again because its column
                            // is excluded from pricing below.
                        }
                    }
                }
            }
        }
        // Phase 2: original objective, artificial columns frozen.
        let cost = self.cost.clone();
        match self.run(&cost) {
            SimplexEnd::Optimal(value) => {
                let mut values = vec![0.0; self.num_structural];
                for row in 0..self.num_rows {
                    let b = self.basis[row];
                    if b < self.num_structural {
                        values[b] = self.a[row][self.num_cols];
                    }
                }
                LpOutcome::Optimal(LpSolution {
                    objective: value,
                    values,
                })
            }
            SimplexEnd::Unbounded => LpOutcome::Unbounded,
        }
    }

    /// Runs simplex iterations minimizing `cost`; returns objective value.
    fn run(&mut self, cost: &[f64]) -> SimplexEnd {
        // Reduced costs are recomputed per iteration from the current basis —
        // O(m·n) per pricing step, acceptable for our instance sizes and
        // immune to drift in an incrementally-updated cost row.
        let limit_cols = if cost.iter().skip(self.artificial_start).any(|&c| c != 0.0) {
            self.num_cols // phase 1 prices artificials too
        } else {
            self.artificial_start // phase 2 never re-enters artificials
        };
        let max_iters = 50_000 + 200 * self.num_cols * (self.num_rows + 1);
        for _ in 0..max_iters {
            // Compute y = c_B^T B^{-1} implicitly: reduced cost of column j is
            // c_j - sum over rows of c_{basis[row]} * a[row][j].
            let basics_cost: Vec<f64> = self.basis.iter().map(|&b| cost[b]).collect();
            let mut entering = None;
            for (j, &cj) in cost.iter().enumerate().take(limit_cols) {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut red = cj;
                for (bc, arow) in basics_cost.iter().zip(&self.a) {
                    red -= bc * arow[j];
                }
                if red < -EPS {
                    // Bland's rule: first improving column (prevents cycling).
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                // Optimal: compute objective over basics.
                let mut value = 0.0;
                for (bc, arow) in basics_cost.iter().zip(&self.a) {
                    value += bc * arow[self.num_cols];
                }
                return SimplexEnd::Optimal(value);
            };
            // Ratio test.
            let mut leave: Option<(usize, f64)> = None;
            for row in 0..self.num_rows {
                let coeff = self.a[row][j];
                if coeff > EPS {
                    let ratio = self.a[row][self.num_cols] / coeff;
                    match leave {
                        None => leave = Some((row, ratio)),
                        Some((lrow, lratio)) => {
                            if ratio < lratio - EPS
                                || ((ratio - lratio).abs() <= EPS
                                    && self.basis[row] < self.basis[lrow])
                            {
                                leave = Some((row, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return SimplexEnd::Unbounded;
            };
            self.pivot(row, j);
        }
        // Iteration limit: treat as optimal-so-far is unsound; declare
        // unbounded conservatively instead of looping forever. With Bland's
        // rule this branch is unreachable in practice.
        SimplexEnd::Unbounded
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > EPS, "pivot on (near-)zero element");
        for x in self.a[row].iter_mut() {
            *x /= pivot;
        }
        for r in 0..self.num_rows {
            if r != row {
                let factor = self.a[r][col];
                if factor.abs() > EPS {
                    for jj in 0..=self.num_cols {
                        self.a[r][jj] -= factor * self.a[row][jj];
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::VarId;

    fn var(i: usize) -> LinExpr {
        LinExpr::var(VarId(i))
    }

    fn optimal(num_vars: usize, cons: &[Constraint], obj: &LinExpr) -> LpSolution {
        match solve_lp(num_vars, cons, obj) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj 12.
        let cons = vec![
            Constraint::new(var(0) + var(1), Sense::Le, 4.0),
            Constraint::new(var(0) + var(1) * 3.0, Sense::Le, 6.0),
        ];
        let obj = var(0) * -3.0 + var(1) * -2.0;
        let s = optimal(2, &cons, &obj);
        assert!(
            (s.objective + 12.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y == 3, x - y == 1 → x=2, y=1.
        let cons = vec![
            Constraint::new(var(0) + var(1), Sense::Eq, 3.0),
            Constraint::new(var(0) - var(1), Sense::Eq, 1.0),
        ];
        let obj = var(0) + var(1);
        let s = optimal(2, &cons, &obj);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let cons = vec![
            Constraint::new(var(0), Sense::Ge, 2.0),
            Constraint::new(var(0), Sense::Le, 1.0),
        ];
        assert_eq!(solve_lp(1, &cons, &var(0)), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 0 → unbounded.
        let cons = vec![Constraint::new(var(0), Sense::Ge, 0.0)];
        let obj = var(0) * -1.0;
        assert_eq!(solve_lp(1, &cons, &obj), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y >= -2 with min x, y <= 5: feasible with x=0.
        let cons = vec![
            Constraint::new(var(0) - var(1), Sense::Ge, -2.0),
            Constraint::new(var(1), Sense::Le, 5.0),
        ];
        let s = optimal(2, &cons, &var(0));
        assert!(s.objective.abs() < 1e-6);
    }

    #[test]
    fn degenerate_pivoting_terminates() {
        // A classic degenerate LP; Bland's rule must terminate.
        let cons = vec![
            Constraint::new(var(0) + var(1), Sense::Le, 0.0),
            Constraint::new(var(0) - var(1), Sense::Le, 0.0),
            Constraint::new(var(0), Sense::Le, 1.0),
        ];
        let obj = var(0) * -1.0;
        let s = optimal(2, &cons, &obj);
        assert!(s.objective.abs() < 1e-6);
    }

    #[test]
    fn scheduling_like_difference_lp() {
        // min (s2 - s0) + (s2 - s1) s.t. s1 >= s0 + 1, s2 >= s1 + 1, s2 >= s0 + 1
        let cons = vec![
            Constraint::new(var(1) - var(0), Sense::Ge, 1.0),
            Constraint::new(var(2) - var(1), Sense::Ge, 1.0),
            Constraint::new(var(2) - var(0), Sense::Ge, 1.0),
        ];
        let obj = var(2) * 2.0 - var(0) - var(1);
        let s = optimal(3, &cons, &obj);
        // Optimal: s0=0 s1=1 s2=2 → (2-0)+(2-1)=3.
        assert!(
            (s.objective - 3.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y == 2 stated twice (redundant row drives artificial handling).
        let cons = vec![
            Constraint::new(var(0) + var(1), Sense::Eq, 2.0),
            Constraint::new(var(0) + var(1), Sense::Eq, 2.0),
        ];
        let s = optimal(2, &cons, &(var(0) + var(1)));
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn random_lps_match_brute_force_vertices() {
        // For random bounded LPs in 2 vars with integer data, compare against
        // brute-force over a fine grid (coarse check of optimality).
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 7) as f64 - 3.0
        };
        for trial in 0..30 {
            let c0 = next();
            let c1 = next();
            let mut cons = vec![
                Constraint::new(var(0), Sense::Le, 5.0),
                Constraint::new(var(1), Sense::Le, 5.0),
            ];
            for _ in 0..3 {
                let a0 = next();
                let a1 = next();
                let b = next().abs() + 1.0;
                cons.push(Constraint::new(var(0) * a0 + var(1) * a1, Sense::Le, b));
            }
            let obj = var(0) * c0 + var(1) * c1;
            let outcome = solve_lp(2, &cons, &obj);
            let LpOutcome::Optimal(sol) = outcome else {
                continue; // occasionally infeasible/unbounded; skip
            };
            // Grid brute force.
            let mut best = f64::INFINITY;
            let steps = 50;
            for i in 0..=steps {
                for j in 0..=steps {
                    let x = 5.0 * i as f64 / steps as f64;
                    let y = 5.0 * j as f64 / steps as f64;
                    let p = [x, y];
                    if cons.iter().all(|c| c.satisfied(&p, 1e-9)) {
                        best = best.min(c0 * x + c1 * y);
                    }
                }
            }
            if best.is_finite() {
                assert!(
                    sol.objective <= best + 1e-4,
                    "trial {trial}: simplex {} worse than grid {}",
                    sol.objective,
                    best
                );
            }
        }
    }
}
