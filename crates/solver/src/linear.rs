//! Linear expressions and constraints shared by the LP/MILP layers.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A variable handle inside an LP/MILP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Comparison sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr <= bound`
    Le,
    /// `expr >= bound`
    Ge,
    /// `expr == bound`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "==",
        })
    }
}

/// A sparse linear expression `Σ coeff_i · x_i`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
}

impl LinExpr {
    /// The empty (zero) expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a single variable with coefficient 1.
    pub fn var(v: VarId) -> Self {
        let mut e = Self::new();
        e.add_term(v, 1.0);
        e
    }

    /// Adds `coeff · v` to the expression.
    pub fn add_term(&mut self, v: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(v).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < 1e-12 {
            self.terms.remove(&v);
        }
        self
    }

    /// Iterates over `(variable, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression on an assignment indexed by `VarId`.
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        self.terms.iter().map(|(&v, &c)| c * assignment[v.0]).sum()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms() {
            self.add_term(v, c);
        }
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms() {
            self.add_term(v, -c);
        }
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        let mut out = LinExpr::new();
        for (v, c) in self.terms() {
            out.add_term(v, c * k);
        }
        out
    }
}

/// A linear constraint `expr (sense) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left-hand side expression.
    pub expr: LinExpr,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Builds a constraint.
    pub fn new(expr: LinExpr, sense: Sense, rhs: f64) -> Self {
        Constraint { expr, sense, rhs }
    }

    /// Checks the constraint against an assignment with tolerance `eps`.
    pub fn satisfied(&self, assignment: &[f64], eps: f64) -> bool {
        let lhs = self.expr.eval(assignment);
        match self.sense {
            Sense::Le => lhs <= self.rhs + eps,
            Sense::Ge => lhs >= self.rhs - eps,
            Sense::Eq => (lhs - self.rhs).abs() <= eps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_algebra() {
        let x = VarId(0);
        let y = VarId(1);
        let e = LinExpr::var(x) * 2.0 + LinExpr::var(y) - LinExpr::var(x);
        let terms: Vec<_> = e.terms().collect();
        assert_eq!(terms, vec![(x, 1.0), (y, 1.0)]);
    }

    #[test]
    fn cancelling_terms_disappear() {
        let x = VarId(0);
        let e = LinExpr::var(x) - LinExpr::var(x);
        assert!(e.is_empty());
    }

    #[test]
    fn eval_and_satisfaction() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::new();
        e.add_term(x, 1.0).add_term(y, 2.0);
        let c = Constraint::new(e, Sense::Le, 5.0);
        assert!(c.satisfied(&[1.0, 2.0], 1e-9));
        assert!(!c.satisfied(&[2.0, 2.0], 1e-9));
    }
}
