//! Difference-constraint systems and DAG scheduling.
//!
//! Phase assignment over an acyclic netlist is, at its core, a system of
//! difference constraints `x_j - x_i >= w_ij`. On a DAG the *minimal*
//! feasible assignment (ASAP schedule) is the longest path from the sources,
//! and the *maximal* assignment under a horizon (ALAP) is its mirror. A
//! general Bellman-Ford solver handles (small) possibly-cyclic systems and
//! doubles as an independent oracle in tests.
//!
//! # Examples
//!
//! ```
//! use sfq_solver::diffcon::DifferenceSystem;
//!
//! let mut sys = DifferenceSystem::new(3);
//! sys.add(0, 1, 1); // x1 >= x0 + 1
//! sys.add(1, 2, 2); // x2 >= x1 + 2
//! let asap = sys.solve_min().expect("acyclic");
//! assert_eq!(asap, vec![0, 1, 3]);
//! ```

/// A system of constraints `x_to - x_from >= weight` over variables
/// `0..num_vars`, with implicit `x_i >= 0`.
#[derive(Debug, Clone, Default)]
pub struct DifferenceSystem {
    num_vars: usize,
    edges: Vec<(usize, usize, i64)>,
}

impl DifferenceSystem {
    /// Creates a system over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        DifferenceSystem {
            num_vars,
            edges: Vec::new(),
        }
    }

    /// Adds the constraint `x_to >= x_from + weight`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add(&mut self, from: usize, to: usize, weight: i64) {
        assert!(
            from < self.num_vars && to < self.num_vars,
            "variable out of range"
        );
        self.edges.push((from, to, weight));
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Computes the pointwise-minimal non-negative solution (longest path
    /// from the implicit zero source), or `None` if the constraint graph has
    /// a positive cycle (infeasible).
    ///
    /// Runs Bellman-Ford in `O(V·E)`; use [`DifferenceSystem::solve_min_dag`]
    /// for large acyclic systems.
    pub fn solve_min(&self) -> Option<Vec<i64>> {
        let mut x = vec![0i64; self.num_vars];
        for round in 0..=self.num_vars {
            let mut changed = false;
            for &(from, to, w) in &self.edges {
                if x[from] + w > x[to] {
                    x[to] = x[from] + w;
                    changed = true;
                }
            }
            if !changed {
                return Some(x);
            }
            if round == self.num_vars {
                return None; // positive cycle
            }
        }
        Some(x)
    }

    /// Longest-path relaxation in topological order, `O(V + E)`.
    ///
    /// Returns `None` if the constraint graph is cyclic.
    pub fn solve_min_dag(&self) -> Option<Vec<i64>> {
        let order = self.topo_order()?;
        let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); self.num_vars];
        for &(from, to, w) in &self.edges {
            adj[from].push((to, w));
        }
        let mut x = vec![0i64; self.num_vars];
        for &u in &order {
            for &(v, w) in &adj[u] {
                if x[u] + w > x[v] {
                    x[v] = x[u] + w;
                }
            }
        }
        Some(x)
    }

    /// Pointwise-maximal solution with every `x_i <= horizon` (ALAP).
    ///
    /// Returns `None` if the graph is cyclic or some longest path exceeds
    /// the horizon (no feasible schedule within it).
    pub fn solve_max_dag(&self, horizon: i64) -> Option<Vec<i64>> {
        let order = self.topo_order()?;
        let mut radj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); self.num_vars];
        for &(from, to, w) in &self.edges {
            radj[to].push((from, w));
        }
        let mut x = vec![horizon; self.num_vars];
        for &u in order.iter().rev() {
            for &(from, w) in &radj[u] {
                if x[u] - w < x[from] {
                    x[from] = x[u] - w;
                }
            }
        }
        if x.iter().any(|&v| v < 0) {
            return None;
        }
        Some(x)
    }

    fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.num_vars];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.num_vars];
        for &(from, to, _) in &self.edges {
            indeg[to] += 1;
            adj[from].push(to);
        }
        let mut queue: Vec<usize> = (0..self.num_vars).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.num_vars);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == self.num_vars).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_asap() {
        let mut s = DifferenceSystem::new(4);
        s.add(0, 1, 1);
        s.add(1, 2, 1);
        s.add(2, 3, 1);
        assert_eq!(s.solve_min().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(s.solve_min_dag().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn diamond_takes_longest_path() {
        let mut s = DifferenceSystem::new(4);
        s.add(0, 1, 1);
        s.add(0, 2, 3);
        s.add(1, 3, 1);
        s.add(2, 3, 1);
        let x = s.solve_min_dag().unwrap();
        assert_eq!(x[3], 4);
    }

    #[test]
    fn positive_cycle_infeasible() {
        let mut s = DifferenceSystem::new(2);
        s.add(0, 1, 1);
        s.add(1, 0, 1);
        assert!(s.solve_min().is_none());
        assert!(s.solve_min_dag().is_none());
    }

    #[test]
    fn bellman_ford_matches_dag_on_random_dags() {
        let mut seed = 42u64;
        let mut next = move |m: u64| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _ in 0..20 {
            let n = 2 + next(10) as usize;
            let mut s = DifferenceSystem::new(n);
            for _ in 0..2 * n {
                let a = next(n as u64) as usize;
                let b = next(n as u64) as usize;
                if a < b {
                    s.add(a, b, next(4) as i64);
                }
            }
            assert_eq!(s.solve_min(), s.solve_min_dag());
        }
    }

    #[test]
    fn alap_respects_horizon() {
        let mut s = DifferenceSystem::new(3);
        s.add(0, 1, 2);
        s.add(1, 2, 2);
        let alap = s.solve_max_dag(10).unwrap();
        assert_eq!(alap, vec![6, 8, 10]);
        // Horizon too small → infeasible.
        assert!(s.solve_max_dag(3).is_none());
    }

    #[test]
    fn asap_below_alap() {
        let mut s = DifferenceSystem::new(5);
        s.add(0, 2, 1);
        s.add(1, 2, 2);
        s.add(2, 3, 1);
        s.add(2, 4, 3);
        let asap = s.solve_min_dag().unwrap();
        let alap = s.solve_max_dag(10).unwrap();
        for i in 0..5 {
            assert!(
                asap[i] <= alap[i],
                "var {i}: asap {} > alap {}",
                asap[i],
                alap[i]
            );
        }
    }

    #[test]
    fn empty_system() {
        let s = DifferenceSystem::new(3);
        assert!(s.is_empty());
        assert_eq!(s.solve_min().unwrap(), vec![0, 0, 0]);
    }
}
