//! A CDCL SAT solver.
//!
//! Conflict-driven clause learning with two-watched-literal propagation,
//! VSIDS-style variable activities, first-UIP clause learning and Luby
//! restarts. This is the engine under the CP layer (the paper uses CP-SAT
//! from OR-Tools for DFF insertion; we build our own — DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use sfq_solver::sat::{SatSolver, SatLit};
//!
//! let mut s = SatSolver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([SatLit::pos(a), SatLit::pos(b)]);
//! s.add_clause([SatLit::neg(a)]);
//! let model = s.solve().expect("satisfiable");
//! assert!(!model[a.index()] && model[b.index()]);
//! ```

use std::fmt;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatVar(u32);

impl SatVar {
    /// Index into model vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: variable plus polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatLit(u32);

impl SatLit {
    /// Positive literal of `v`.
    pub fn pos(v: SatVar) -> Self {
        SatLit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: SatVar) -> Self {
        SatLit(v.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// Returns `true` for a negative literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }

    fn negate(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;
    fn not(self) -> SatLit {
        self.negate()
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.is_neg() { "¬" } else { "" },
            self.var().0
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

impl Value {
    fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }
}

type ClauseRef = usize;

/// Result of a (possibly budget-limited) solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Satisfiable, with a full model indexed by [`SatVar::index`].
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// The conflict budget ran out before an answer was found.
    Unknown,
}

/// CDCL SAT solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Vec<SatLit>>,
    /// watches[lit.index()] = clauses watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<Value>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phases for phase saving.
    phase: Vec<bool>,
    ok: bool,
    /// Statistics: number of conflicts encountered.
    pub conflicts: u64,
    /// Statistics: number of decisions taken.
    pub decisions: u64,
    /// Statistics: number of propagated literals.
    pub propagations: u64,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            act_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.assign.len() as u32);
        self.assign.push(Value::Unassigned);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Adds a clause (an iterator of literals). An empty clause makes the
    /// instance trivially unsatisfiable.
    pub fn add_clause<I: IntoIterator<Item = SatLit>>(&mut self, lits: I) {
        if !self.ok {
            return;
        }
        let mut c: Vec<SatLit> = lits.into_iter().collect();
        c.sort_by_key(|l| l.0);
        c.dedup();
        // Tautology check.
        if c.windows(2).any(|w| w[0] == !w[1]) {
            return;
        }
        debug_assert_eq!(self.trail_lim.len(), 0, "clauses must be added at level 0");
        // Remove literals already false at level 0; detect satisfied clauses.
        c.retain(|&l| self.value(l) != Value::False);
        if c.iter().any(|&l| self.value(l) == Value::True) {
            return;
        }
        match c.len() {
            0 => self.ok = false,
            1 => {
                if !self.enqueue(c[0], None) || self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].negate().index()].push(idx);
                self.watches[c[1].negate().index()].push(idx);
                self.clauses.push(c);
            }
        }
    }

    fn value(&self, l: SatLit) -> Value {
        match self.assign[l.var().index()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => Value::from_bool(!l.is_neg()),
            Value::False => Value::from_bool(l.is_neg()),
        }
    }

    fn enqueue(&mut self, l: SatLit, reason: Option<ClauseRef>) -> bool {
        match self.value(l) {
            Value::True => true,
            Value::False => false,
            Value::Unassigned => {
                let v = l.var().index();
                self.assign[v] = Value::from_bool(!l.is_neg());
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.phase[v] = !l.is_neg();
                self.trail.push(l);
                self.propagations += 1;
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            // Clauses watching ¬p (stored under p's index by convention above:
            // we registered watch under `lit.negate()`, so watches[p.index()]
            // holds clauses where p's falsification matters).
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                let false_lit = !p;
                // Ensure false_lit is at position 1.
                {
                    let c = &mut self.clauses[cref];
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                }
                let first = self.clauses[cref][0];
                if self.value(first) == Value::True {
                    i += 1;
                    continue;
                }
                // Find a new watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].len() {
                    let lk = self.clauses[cref][k];
                    if self.value(lk) != Value::False {
                        self.clauses[cref].swap(1, k);
                        self.watches[lk.negate().index()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore remaining watches.
                    self.watches[p.index()].append(&mut ws);
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.act_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    fn decay(&mut self) {
        self.act_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<SatLit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<SatLit> = vec![SatLit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut cref = confl;
        let mut idx = self.trail.len();

        loop {
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref].len() {
                let q = self.clauses[cref][k];
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[p.unwrap().var().index()].expect("resolved literal has a reason");
            seen[p.unwrap().var().index()] = false;
        }
        learnt[0] = !p.unwrap();
        // Backjump level = max level among non-UIP literals; move that
        // literal into watch position 1 (standard MiniSat invariant).
        let mut bj = 0u32;
        let mut max_idx = 1usize;
        for (k, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bj {
                bj = lv;
                max_idx = k;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_idx);
        }
        (learnt, bj)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().index();
                self.assign[v] = Value::Unassigned;
                self.reason[v] = None;
            }
        }
        self.prop_head = self.trail.len();
    }

    fn pick_branch(&self) -> Option<SatLit> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == Value::Unassigned {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| {
            let var = SatVar(v as u32);
            if self.phase[v] {
                SatLit::pos(var)
            } else {
                SatLit::neg(var)
            }
        })
    }

    /// Solves the instance. Returns `Some(model)` (indexed by
    /// [`SatVar::index`]) if satisfiable, `None` if unsatisfiable.
    pub fn solve(&mut self) -> Option<Vec<bool>> {
        match self.solve_limited(None) {
            SolveOutcome::Sat(model) => Some(model),
            SolveOutcome::Unsat => None,
            SolveOutcome::Unknown => unreachable!("unbounded solve cannot time out"),
        }
    }

    /// Solves with an optional conflict budget.
    ///
    /// With `max_conflicts = None` this is exactly [`SatSolver::solve`].
    /// With a budget, the search gives up after that many additional
    /// conflicts and returns [`SolveOutcome::Unknown`], leaving the solver
    /// at decision level zero with its learnt clauses intact, so callers
    /// (e.g. SAT sweeping in `sfq-opt`) can treat a blown budget as "not
    /// proven" and move on — or call again to continue with a fresh budget.
    pub fn solve_limited(&mut self, max_conflicts: Option<u64>) -> SolveOutcome {
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveOutcome::Unsat;
        }
        let budget = max_conflicts.map(|m| self.conflicts.saturating_add(m));
        let mut restart_count = 0u32;
        let mut conflicts_until_restart = luby(restart_count) * 100;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                if budget.is_some_and(|b| self.conflicts >= b) {
                    self.backtrack(0);
                    return SolveOutcome::Unknown;
                }
                let (learnt, bj) = self.analyze(confl);
                self.backtrack(bj);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    let ok = self.enqueue(asserting, None);
                    debug_assert!(ok, "asserting unit must be enqueueable");
                } else {
                    let idx = self.clauses.len();
                    self.watches[learnt[0].negate().index()].push(idx);
                    self.watches[learnt[1].negate().index()].push(idx);
                    self.clauses.push(learnt);
                    let ok = self.enqueue(asserting, Some(idx));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                self.decay();
                if conflicts_until_restart > 0 {
                    conflicts_until_restart -= 1;
                } else {
                    restart_count += 1;
                    conflicts_until_restart = luby(restart_count) * 100;
                    self.backtrack(0);
                }
            } else {
                match self.pick_branch() {
                    None => {
                        // Full assignment: extract model.
                        return SolveOutcome::Sat(
                            self.assign.iter().map(|&v| v == Value::True).collect(),
                        );
                    }
                    Some(l) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

/// Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << (k + 1)) - 1 <= (i as u64) + 1 {
        k += 1;
    }
    let mut i = i as u64;
    let mut kk = k;
    loop {
        if i + 1 == (1u64 << kk) - 1 {
            return 1u64 << (kk - 1);
        }
        if i + 1 < (1u64 << kk) - 1 {
            kk -= 1;
            if kk == 0 {
                return 1;
            }
            continue;
        }
        i -= (1u64 << kk) - 1;
        // Restart scan for the remainder.
        kk = 1;
        while (1u64 << (kk + 1)) - 1 <= i + 1 {
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut SatSolver, n: usize) -> Vec<SatVar> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause([SatLit::pos(v[0])]);
        s.add_clause([SatLit::neg(v[1])]);
        let m = s.solve().unwrap();
        assert!(m[0] && !m[1]);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause([SatLit::pos(v[0])]);
        s.add_clause([SatLit::neg(v[0])]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        let _ = lits(&mut s, 1);
        s.add_clause([]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn implication_chain() {
        // a, a→b, b→c, ..., forces all true.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 10);
        s.add_clause([SatLit::pos(v[0])]);
        for i in 0..9 {
            s.add_clause([SatLit::neg(v[i]), SatLit::pos(v[i + 1])]);
        }
        let m = s.solve().unwrap();
        assert!(m.iter().all(|&b| b));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes. x[p][h] = pigeon p in hole h.
        let mut s = SatSolver::new();
        let mut x = [[SatVar(0); 2]; 3];
        for row in x.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &x {
            s.add_clause([SatLit::pos(row[0]), SatLit::pos(row[1])]);
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[p1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause([SatLit::neg(a), SatLit::neg(b)]);
                }
            }
        }
        assert!(s.solve().is_none());
    }

    #[test]
    fn pigeonhole_4_into_4_sat() {
        let n = 4;
        let mut s = SatSolver::new();
        let mut x = vec![vec![SatVar(0); n]; n];
        for row in x.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &x {
            s.add_clause(row.iter().map(|&v| SatLit::pos(v)));
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[p1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause([SatLit::neg(a), SatLit::neg(b)]);
                }
            }
        }
        let m = s.solve().unwrap();
        // Verify it is a perfect matching.
        for h in 0..n {
            let count = (0..n).filter(|&p| m[x[p][h].index()]).count();
            assert!(count <= 1, "hole {h} hosts {count} pigeons");
        }
        for p in 0..n {
            assert!((0..n).any(|h| m[x[p][h].index()]), "pigeon {p} unplaced");
        }
    }

    #[test]
    fn random_3sat_vs_brute_force() {
        // Cross-check SAT/UNSAT answers against exhaustive enumeration for
        // random small formulas.
        let mut seed = 0xdeadbeefu64;
        let mut next = move |m: u64| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for trial in 0..60 {
            let nv = 6;
            let nc = 3 + (trial % 20);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nc {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push((next(nv as u64) as usize, next(2) == 1));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut any = false;
            'outer: for m in 0..(1u32 << nv) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, neg)| ((m >> v) & 1 == 1) != neg) {
                        continue 'outer;
                    }
                }
                any = true;
                break;
            }
            // CDCL.
            let mut s = SatSolver::new();
            let vars = lits(&mut s, nv);
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&(v, neg)| {
                    if neg {
                        SatLit::neg(vars[v])
                    } else {
                        SatLit::pos(vars[v])
                    }
                }));
            }
            let res = s.solve();
            assert_eq!(
                res.is_some(),
                any,
                "trial {trial} disagrees with brute force"
            );
            if let Some(model) = res {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|&(v, neg)| model[vars[v].index()] != neg),
                        "model violates clause"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_limited_gives_up_then_finishes() {
        // PHP(5,4) needs plenty of conflicts: a one-conflict budget must
        // come back Unknown, and an unbounded follow-up call on the same
        // solver must still prove UNSAT.
        let n = 5;
        let mut s = SatSolver::new();
        let mut x = vec![vec![SatVar(0); n - 1]; n];
        for row in x.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &x {
            s.add_clause(row.iter().map(|&v| SatLit::pos(v)));
        }
        for (p1, row1) in x.iter().enumerate() {
            for row2 in &x[p1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause([SatLit::neg(a), SatLit::neg(b)]);
                }
            }
        }
        assert_eq!(s.solve_limited(Some(1)), SolveOutcome::Unknown);
        assert_eq!(s.solve_limited(None), SolveOutcome::Unsat);
    }

    #[test]
    fn solve_limited_sat_matches_solve() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause([SatLit::pos(v[0]), SatLit::pos(v[1])]);
        s.add_clause([SatLit::neg(v[0]), SatLit::pos(v[2])]);
        match s.solve_limited(Some(10_000)) {
            SolveOutcome::Sat(m) => assert!((m[0] && m[2]) || m[1]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause([SatLit::pos(v[0]), SatLit::pos(v[0])]);
        s.add_clause([SatLit::pos(v[1]), SatLit::neg(v[1])]); // tautology: ignored
        let m = s.solve().unwrap();
        assert!(m[0]);
    }
}
