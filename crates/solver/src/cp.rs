//! A small finite-domain constraint-programming solver.
//!
//! Covers exactly the constraint vocabulary the paper's DFF-insertion step
//! needs (ref \[10\] uses OR-Tools CP-SAT): bounded integer variables, linear
//! inequalities, disequalities and `alldifferent` (eq. 5 — the DFFs feeding
//! a T1 cell must sit at pairwise distinct stages).
//!
//! Search is depth-first with bounds-consistency propagation for linear
//! constraints and value pruning for (all)different, using a
//! minimum-remaining-values variable order. Optional objective minimization
//! is done by branch-and-bound on incumbent cost.
//!
//! # Examples
//!
//! ```
//! use sfq_solver::cp::CpModel;
//!
//! let mut m = CpModel::new();
//! let x = m.add_var(0, 3);
//! let y = m.add_var(0, 3);
//! let z = m.add_var(0, 3);
//! m.all_different(&[x, y, z]);
//! m.linear_le(&[(1, x), (1, y), (1, z)], 3); // x + y + z <= 3
//! let sol = m.solve().expect("0+1+2 fits");
//! let mut vals = [sol[x], sol[y], sol[z]];
//! vals.sort();
//! assert_eq!(vals, [0, 1, 2]);
//! ```

/// Handle of a CP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpVar(pub usize);

#[derive(Debug, Clone)]
enum CpConstraint {
    /// Σ coeff·var <= bound
    LinearLe(Vec<(i64, CpVar)>, i64),
    /// var_a != var_b
    NotEqual(CpVar, CpVar),
    /// all pairwise different
    AllDifferent(Vec<CpVar>),
}

/// An inclusive-interval domain with removed-value holes.
#[derive(Debug, Clone)]
struct Domain {
    lo: i64,
    hi: i64,
    /// Values removed from inside the interval (kept small in our workloads).
    holes: Vec<i64>,
}

impl Domain {
    fn contains(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi && !self.holes.contains(&v)
    }

    fn size(&self) -> i64 {
        (self.hi - self.lo + 1) - self.holes.len() as i64
    }

    fn is_fixed(&self) -> bool {
        self.size() == 1
    }

    fn fixed_value(&self) -> Option<i64> {
        if self.is_fixed() {
            (self.lo..=self.hi).find(|&v| self.contains(v))
        } else {
            None
        }
    }

    fn tighten_lo(&mut self, v: i64) -> bool {
        if v > self.lo {
            self.lo = v;
        }
        self.normalize()
    }

    fn tighten_hi(&mut self, v: i64) -> bool {
        if v < self.hi {
            self.hi = v;
        }
        self.normalize()
    }

    fn remove(&mut self, v: i64) -> bool {
        if self.contains(v) {
            self.holes.push(v);
        }
        self.normalize()
    }

    /// Slides bounds off holes; returns `false` if the domain became empty.
    fn normalize(&mut self) -> bool {
        while self.lo <= self.hi && self.holes.contains(&self.lo) {
            self.lo += 1;
        }
        while self.lo <= self.hi && self.holes.contains(&self.hi) {
            self.hi -= 1;
        }
        self.holes.retain(|&h| h > self.lo && h < self.hi);
        self.lo <= self.hi
    }
}

/// A CP model: variables, constraints, optional linear objective.
#[derive(Debug, Clone, Default)]
pub struct CpModel {
    domains: Vec<Domain>,
    constraints: Vec<CpConstraint>,
    objective: Option<Vec<(i64, CpVar)>>,
    /// Backtracking-node budget; `solve` gives up (returns best-so-far for
    /// optimization, `None` for satisfaction) once exhausted.
    pub node_limit: usize,
}

/// A complete assignment indexed by [`CpVar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpSolution {
    values: Vec<i64>,
}

impl std::ops::Index<CpVar> for CpSolution {
    type Output = i64;
    fn index(&self, v: CpVar) -> &i64 {
        &self.values[v.0]
    }
}

impl CpSolution {
    /// All values, indexed by variable number.
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

impl CpModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        CpModel {
            node_limit: 1_000_000,
            ..Default::default()
        }
    }

    /// Adds a variable with inclusive domain `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn add_var(&mut self, lo: i64, hi: i64) -> CpVar {
        assert!(lo <= hi, "empty initial domain");
        self.domains.push(Domain {
            lo,
            hi,
            holes: Vec::new(),
        });
        CpVar(self.domains.len() - 1)
    }

    /// Posts `Σ coeff·var <= bound`.
    pub fn linear_le(&mut self, terms: &[(i64, CpVar)], bound: i64) {
        self.constraints
            .push(CpConstraint::LinearLe(terms.to_vec(), bound));
    }

    /// Posts `Σ coeff·var >= bound`.
    pub fn linear_ge(&mut self, terms: &[(i64, CpVar)], bound: i64) {
        let neg: Vec<(i64, CpVar)> = terms.iter().map(|&(c, v)| (-c, v)).collect();
        self.constraints.push(CpConstraint::LinearLe(neg, -bound));
    }

    /// Posts `Σ coeff·var == bound`.
    pub fn linear_eq(&mut self, terms: &[(i64, CpVar)], bound: i64) {
        self.linear_le(terms, bound);
        self.linear_ge(terms, bound);
    }

    /// Posts `a != b`.
    pub fn not_equal(&mut self, a: CpVar, b: CpVar) {
        self.constraints.push(CpConstraint::NotEqual(a, b));
    }

    /// Posts pairwise difference over `vars` (eq. 5 of the paper).
    pub fn all_different(&mut self, vars: &[CpVar]) {
        self.constraints
            .push(CpConstraint::AllDifferent(vars.to_vec()));
    }

    /// Sets a linear minimization objective.
    pub fn minimize(&mut self, terms: &[(i64, CpVar)]) {
        self.objective = Some(terms.to_vec());
    }

    /// Finds a solution (optimal if an objective was set).
    pub fn solve(&self) -> Option<CpSolution> {
        let mut domains = self.domains.clone();
        if !propagate(&self.constraints, &mut domains) {
            return None;
        }
        let mut best: Option<(i64, Vec<i64>)> = None;
        let mut nodes = 0usize;
        search(
            &self.constraints,
            &self.objective,
            domains,
            &mut best,
            &mut nodes,
            self.node_limit,
        );
        best.map(|(_, values)| CpSolution { values })
    }
}

fn objective_value(obj: &Option<Vec<(i64, CpVar)>>, values: &[i64]) -> i64 {
    match obj {
        None => 0,
        Some(terms) => terms.iter().map(|&(c, v)| c * values[v.0]).sum(),
    }
}

/// Objective lower bound on partial domains (for pruning).
fn objective_lower_bound(obj: &Option<Vec<(i64, CpVar)>>, domains: &[Domain]) -> i64 {
    match obj {
        None => 0,
        Some(terms) => terms
            .iter()
            .map(|&(c, v)| {
                if c >= 0 {
                    c * domains[v.0].lo
                } else {
                    c * domains[v.0].hi
                }
            })
            .sum(),
    }
}

fn search(
    constraints: &[CpConstraint],
    obj: &Option<Vec<(i64, CpVar)>>,
    domains: Vec<Domain>,
    best: &mut Option<(i64, Vec<i64>)>,
    nodes: &mut usize,
    node_limit: usize,
) {
    *nodes += 1;
    if *nodes > node_limit {
        return;
    }
    if let Some((bound, _)) = best {
        if objective_lower_bound(obj, &domains) >= *bound && obj.is_some() {
            return;
        }
    }
    // Pick unfixed variable with smallest domain.
    let pick = domains
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.is_fixed())
        .min_by_key(|(_, d)| d.size());
    let Some((vi, dom)) = pick else {
        // All fixed: record solution.
        let values: Vec<i64> = domains.iter().map(|d| d.fixed_value().unwrap()).collect();
        let cost = objective_value(obj, &values);
        match best {
            None => *best = Some((cost, values)),
            Some((b, _)) if cost < *b => *best = Some((cost, values)),
            _ => {}
        }
        return;
    };
    let candidates: Vec<i64> = (dom.lo..=dom.hi).filter(|&v| dom.contains(v)).collect();
    for v in candidates {
        let mut child = domains.clone();
        child[vi].lo = v;
        child[vi].hi = v;
        child[vi].holes.clear();
        if propagate(constraints, &mut child) {
            search(constraints, obj, child, best, nodes, node_limit);
            // Satisfaction problems can stop at the first solution.
            if obj.is_none() && best.is_some() {
                return;
            }
        }
        if *nodes > node_limit {
            return;
        }
    }
}

/// Fixed-point propagation; returns `false` on a wipe-out.
fn propagate(constraints: &[CpConstraint], domains: &mut [Domain]) -> bool {
    loop {
        let mut changed = false;
        for c in constraints {
            match c {
                CpConstraint::LinearLe(terms, bound) => {
                    // Bounds consistency: for each term, the tightest bound
                    // given the minimal contribution of all other terms.
                    let min_total: i64 = terms
                        .iter()
                        .map(|&(coef, v)| {
                            if coef >= 0 {
                                coef * domains[v.0].lo
                            } else {
                                coef * domains[v.0].hi
                            }
                        })
                        .sum();
                    if min_total > *bound {
                        return false;
                    }
                    for &(coef, v) in terms {
                        if coef == 0 {
                            continue;
                        }
                        let own_min = if coef >= 0 {
                            coef * domains[v.0].lo
                        } else {
                            coef * domains[v.0].hi
                        };
                        let others = min_total - own_min;
                        let slack = *bound - others;
                        // coef * x <= slack
                        if coef > 0 {
                            let max_x = slack.div_euclid(coef);
                            if max_x < domains[v.0].hi {
                                if !domains[v.0].tighten_hi(max_x) {
                                    return false;
                                }
                                changed = true;
                            }
                        } else {
                            let min_x = (-slack).div_euclid(-coef)
                                + i64::from((-slack).rem_euclid(-coef) != 0);
                            if min_x > domains[v.0].lo {
                                if !domains[v.0].tighten_lo(min_x) {
                                    return false;
                                }
                                changed = true;
                            }
                        }
                    }
                }
                CpConstraint::NotEqual(a, b) => {
                    if !prune_not_equal(domains, *a, *b, &mut changed) {
                        return false;
                    }
                }
                CpConstraint::AllDifferent(vars) => {
                    for i in 0..vars.len() {
                        for j in i + 1..vars.len() {
                            if !prune_not_equal(domains, vars[i], vars[j], &mut changed) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            return true;
        }
    }
}

fn prune_not_equal(domains: &mut [Domain], a: CpVar, b: CpVar, changed: &mut bool) -> bool {
    if let Some(v) = domains[a.0].fixed_value() {
        if domains[b.0].contains(v) {
            if !domains[b.0].remove(v) {
                return false;
            }
            *changed = true;
        }
    }
    if let Some(v) = domains[b.0].fixed_value() {
        if domains[a.0].contains(v) {
            if !domains[a.0].remove(v) {
                return false;
            }
            *changed = true;
        }
    }
    if domains[a.0].is_fixed()
        && domains[b.0].is_fixed()
        && domains[a.0].fixed_value() == domains[b.0].fixed_value()
    {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_satisfaction() {
        let mut m = CpModel::new();
        let x = m.add_var(0, 5);
        m.linear_ge(&[(1, x)], 3);
        let s = m.solve().unwrap();
        assert!(s[x] >= 3);
    }

    #[test]
    fn infeasible_linear() {
        let mut m = CpModel::new();
        let x = m.add_var(0, 5);
        m.linear_ge(&[(1, x)], 6);
        assert!(m.solve().is_none());
    }

    #[test]
    fn all_different_pigeonhole() {
        // 4 vars over [0, 2] all different → impossible.
        let mut m = CpModel::new();
        let vars: Vec<_> = (0..4).map(|_| m.add_var(0, 2)).collect();
        m.all_different(&vars);
        assert!(m.solve().is_none());
    }

    #[test]
    fn all_different_exact_fit() {
        let mut m = CpModel::new();
        let vars: Vec<_> = (0..4).map(|_| m.add_var(0, 3)).collect();
        m.all_different(&vars);
        let s = m.solve().unwrap();
        let mut vals: Vec<i64> = vars.iter().map(|&v| s[v]).collect();
        vals.sort();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn minimize_linear() {
        // min x + y s.t. x + y >= 4, x != y, domains [0,5].
        let mut m = CpModel::new();
        let x = m.add_var(0, 5);
        let y = m.add_var(0, 5);
        m.linear_ge(&[(1, x), (1, y)], 4);
        m.not_equal(x, y);
        m.minimize(&[(1, x), (1, y)]);
        let s = m.solve().unwrap();
        // Best distinct pair summing to >= 4 is {1, 3} (or {0, 4}).
        assert_eq!(s[x] + s[y], 4);
        assert_ne!(s[x], s[y]);
    }

    #[test]
    fn minimize_finds_global_optimum() {
        // min 3x + 2y s.t. x + y >= 3 over [0,4]: best x=0,y=3 → 6.
        let mut m = CpModel::new();
        let x = m.add_var(0, 4);
        let y = m.add_var(0, 4);
        m.linear_ge(&[(1, x), (1, y)], 3);
        m.minimize(&[(3, x), (2, y)]);
        let s = m.solve().unwrap();
        assert_eq!(3 * s[x] + 2 * s[y], 6);
    }

    #[test]
    fn equality_propagates() {
        let mut m = CpModel::new();
        let x = m.add_var(0, 10);
        let y = m.add_var(0, 10);
        m.linear_eq(&[(1, x), (1, y)], 10);
        m.linear_eq(&[(1, x), (-1, y)], 4);
        let s = m.solve().unwrap();
        assert_eq!(s[x], 7);
        assert_eq!(s[y], 3);
    }

    #[test]
    fn t1_staggering_model() {
        // Three DFF stage variables before a T1 at stage 10, n = 4:
        // each within (10 - 4, 10), all different → 7, 8, 9 fits.
        let mut m = CpModel::new();
        let n = 4i64;
        let sigma_t1 = 10i64;
        let d: Vec<_> = (0..3)
            .map(|_| m.add_var(sigma_t1 - n, sigma_t1 - 1))
            .collect();
        m.all_different(&d);
        let s = m.solve().unwrap();
        let mut vals: Vec<i64> = d.iter().map(|&v| s[v]).collect();
        vals.sort();
        vals.dedup();
        assert_eq!(vals.len(), 3, "stages pairwise distinct");
        assert!(vals.iter().all(|&v| (6..=9).contains(&v)));
    }

    #[test]
    fn t1_staggering_infeasible_with_two_phases() {
        // n = 2 phases: only 2 distinct stages within reach → infeasible.
        let mut m = CpModel::new();
        let n = 2i64;
        let sigma_t1 = 10i64;
        let d: Vec<_> = (0..3)
            .map(|_| m.add_var(sigma_t1 - n, sigma_t1 - 1))
            .collect();
        m.all_different(&d);
        assert!(m.solve().is_none());
    }

    #[test]
    fn negative_coefficients() {
        // x - y <= -2 → y >= x + 2.
        let mut m = CpModel::new();
        let x = m.add_var(0, 5);
        let y = m.add_var(0, 5);
        m.linear_le(&[(1, x), (-1, y)], -2);
        m.minimize(&[(1, y)]);
        let s = m.solve().unwrap();
        assert_eq!(s[y], 2);
        assert_eq!(s[x], 0);
    }
}
