//! # sfq-solver
//!
//! Self-contained optimization substrate replacing the Google OR-Tools
//! dependency of the paper (see DESIGN.md §2):
//!
//! - [`linear`] — sparse linear expressions and constraints,
//! - [`simplex`] — two-phase primal simplex LP solver,
//! - [`milp`] — branch-and-bound mixed-integer programming (exact phase
//!   assignment, §II-B of the paper),
//! - [`sat`] — CDCL SAT solver,
//! - [`cp`] — finite-domain CP with `alldifferent` (DFF insertion, §II-C),
//! - [`diffcon`] — difference-constraint / ASAP-ALAP scheduling.
//!
//! # Example
//!
//! ```
//! use sfq_solver::milp::MilpProblem;
//! use sfq_solver::linear::{LinExpr, Sense};
//!
//! // The paper's DFF-count linearization: minimize d with n·d >= σj - σi - n.
//! let mut p = MilpProblem::new();
//! let d = p.add_int_var(0.0, None);
//! p.add_constraint(LinExpr::var(d) * 4.0, Sense::Ge, 9.0 - 4.0);
//! p.set_objective(LinExpr::var(d));
//! let sol = p.solve().expect("feasible");
//! assert_eq!(sol.int_value(d), 2);
//! ```

pub mod cp;
pub mod diffcon;
pub mod linear;
pub mod milp;
pub mod sat;
pub mod simplex;

pub use cp::{CpModel, CpSolution, CpVar};
pub use diffcon::DifferenceSystem;
pub use linear::{Constraint, LinExpr, Sense, VarId};
pub use milp::{MilpError, MilpProblem, MilpSolution};
pub use sat::{SatLit, SatSolver, SatVar, SolveOutcome};
pub use simplex::{solve_lp, LpOutcome, LpSolution};
