//! Property-based tests for the optimization substrate: LP optimality and
//! feasibility, MILP vs exhaustive enumeration, SAT vs brute force, CP vs
//! brute force, and difference-constraint minimality.

use proptest::prelude::*;
use sfq_solver::cp::CpModel;
use sfq_solver::diffcon::DifferenceSystem;
use sfq_solver::linear::{Constraint, LinExpr, Sense, VarId};
use sfq_solver::milp::MilpProblem;
use sfq_solver::sat::{SatLit, SatSolver};
use sfq_solver::simplex::{solve_lp, LpOutcome};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// LP solutions are feasible and no grid point beats them.
    #[test]
    fn lp_optimal_vs_grid(
        c0 in -3i32..4, c1 in -3i32..4,
        rows in prop::collection::vec((-3i32..4, -3i32..4, 1i32..8), 1..4),
    ) {
        let mut cons = vec![
            Constraint::new(LinExpr::var(VarId(0)), Sense::Le, 6.0),
            Constraint::new(LinExpr::var(VarId(1)), Sense::Le, 6.0),
        ];
        for &(a0, a1, b) in &rows {
            cons.push(Constraint::new(
                LinExpr::var(VarId(0)) * a0 as f64 + LinExpr::var(VarId(1)) * a1 as f64,
                Sense::Le,
                b as f64,
            ));
        }
        let obj = LinExpr::var(VarId(0)) * c0 as f64 + LinExpr::var(VarId(1)) * c1 as f64;
        match solve_lp(2, &cons, &obj) {
            LpOutcome::Optimal(sol) => {
                for c in &cons {
                    prop_assert!(c.satisfied(&sol.values, 1e-6), "solution infeasible");
                }
                // Integer grid points cannot beat the LP optimum.
                for x in 0..=6 {
                    for y in 0..=6 {
                        let p = [x as f64, y as f64];
                        if cons.iter().all(|c| c.satisfied(&p, 1e-9)) {
                            let v = c0 as f64 * p[0] + c1 as f64 * p[1];
                            prop_assert!(sol.objective <= v + 1e-6,
                                "grid point ({x},{y}) = {v} beats LP {}", sol.objective);
                        }
                    }
                }
            }
            LpOutcome::Infeasible => {
                // The origin must then violate some constraint.
                prop_assert!(
                    cons.iter().any(|c| !c.satisfied(&[0.0, 0.0], 1e-9)),
                    "claimed infeasible but origin feasible"
                );
            }
            LpOutcome::Unbounded => {
                prop_assert!(c0 < 0 || c1 < 0, "bounded box cannot be unbounded... \
                    unless the objective improves along an unbounded ray");
            }
        }
    }

    /// MILP on bounded binaries agrees with exhaustive enumeration.
    #[test]
    fn milp_matches_enumeration(
        costs in prop::collection::vec(-4i32..5, 4),
        weights in prop::collection::vec(0i32..5, 4),
        cap in 0i32..12,
    ) {
        let mut p = MilpProblem::new();
        let vars: Vec<_> = (0..4).map(|_| p.add_int_var(0.0, Some(1.0))).collect();
        let mut w = LinExpr::new();
        let mut c = LinExpr::new();
        for i in 0..4 {
            w.add_term(vars[i], weights[i] as f64);
            c.add_term(vars[i], costs[i] as f64);
        }
        p.add_constraint(w, Sense::Le, cap as f64);
        p.set_objective(c);
        let sol = p.solve().expect("binary knapsack always feasible (all-zero)");
        // Enumerate.
        let mut best = i32::MAX;
        for m in 0..16u32 {
            let wsum: i32 = (0..4).map(|i| weights[i] * ((m >> i) & 1) as i32).sum();
            if wsum <= cap {
                let csum: i32 = (0..4).map(|i| costs[i] * ((m >> i) & 1) as i32).sum();
                best = best.min(csum);
            }
        }
        prop_assert!((sol.objective - best as f64).abs() < 1e-6,
            "MILP {} vs enumeration {best}", sol.objective);
    }

    /// CDCL agrees with brute force on random 3-SAT.
    #[test]
    fn sat_matches_brute_force(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..7, any::<bool>()), 1..4), 1..24),
    ) {
        let nv = 7;
        let mut brute = false;
        'outer: for m in 0..(1u32 << nv) {
            for cl in &clauses {
                if !cl.iter().any(|&(v, neg)| ((m >> v) & 1 == 1) != neg) {
                    continue 'outer;
                }
            }
            brute = true;
            break;
        }
        let mut s = SatSolver::new();
        let vars: Vec<_> = (0..nv).map(|_| s.new_var()).collect();
        for cl in &clauses {
            s.add_clause(cl.iter().map(|&(v, neg)| {
                if neg { SatLit::neg(vars[v]) } else { SatLit::pos(vars[v]) }
            }));
        }
        let res = s.solve();
        prop_assert_eq!(res.is_some(), brute);
        if let Some(model) = res {
            for cl in &clauses {
                prop_assert!(cl.iter().any(|&(v, neg)| model[vars[v].index()] != neg));
            }
        }
    }

    /// CP minimization agrees with brute force on two-variable models.
    #[test]
    fn cp_matches_brute_force(
        c0 in -3i64..4, c1 in -3i64..4,
        a in -3i64..4, b in -3i64..4, rhs in -6i64..10,
        ne in any::<bool>(),
    ) {
        let mut m = CpModel::new();
        let x = m.add_var(0, 5);
        let y = m.add_var(0, 5);
        m.linear_le(&[(a, x), (b, y)], rhs);
        if ne {
            m.not_equal(x, y);
        }
        m.minimize(&[(c0, x), (c1, y)]);
        let sol = m.solve();
        // Brute force.
        let mut best: Option<i64> = None;
        for vx in 0..=5 {
            for vy in 0..=5 {
                if a * vx + b * vy <= rhs && (!ne || vx != vy) {
                    let c = c0 * vx + c1 * vy;
                    best = Some(best.map_or(c, |b2: i64| b2.min(c)));
                }
            }
        }
        match (sol, best) {
            (Some(s), Some(b2)) => prop_assert_eq!(c0 * s[x] + c1 * s[y], b2),
            (None, None) => {}
            (s, b2) => prop_assert!(false, "solver {:?} vs brute {:?}", s.is_some(), b2),
        }
    }

    /// solve_min returns the pointwise-minimal feasible assignment.
    #[test]
    fn diffcon_minimality(
        edges in prop::collection::vec((0usize..6, 0usize..6, 0i64..5), 1..12),
    ) {
        let mut sys = DifferenceSystem::new(6);
        let mut acyclic = true;
        for &(a, b, w) in &edges {
            if a < b {
                sys.add(a, b, w);
            } else {
                acyclic = false;
            }
        }
        prop_assume!(acyclic || !sys.is_empty());
        if let Some(x) = sys.solve_min() {
            // Feasible…
            for &(a, b, w) in &edges {
                if a < b {
                    prop_assert!(x[b] - x[a] >= w);
                }
            }
            // …and minimal: decreasing any positive variable violates
            // feasibility or non-negativity.
            for v in 0..6 {
                if x[v] > 0 {
                    let mut y = x.clone();
                    y[v] -= 1;
                    let still_ok = edges.iter().all(|&(a, b, w)| a >= b || y[b] - y[a] >= w);
                    prop_assert!(!still_ok, "var {v} could be reduced");
                }
            }
        }
    }
}
