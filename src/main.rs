//! `sfq-t1` — command-line front end for the T1-aware SFQ mapping flow.
//!
//! ```text
//! sfq-t1 gen <benchmark> [width] -o out.aag      generate a benchmark circuit
//! sfq-t1 map <in.aag|in.aig> [options]           run a mapping flow, print stats
//! sfq-t1 verify <in.aag|in.aig> [options]        map + wave-pipelined pulse-sim check
//! sfq-t1 suite [options]                         Table-I suite through sfq-engine
//!
//! options:
//!   --phases N       number of clock phases (default 4)
//!   --no-t1          disable T1 detection (baseline flow)
//!   --exact          exact MILP phase assignment (small circuits)
//!   --verilog FILE   write structural Verilog (with --models FILE for cell models)
//!   --dot FILE       write a Graphviz visualization of the scheduled netlist
//!   --waves K        number of verification waves (verify; default 8)
//!   --small          suite: CI-scale benchmark widths
//!   --jobs N         suite: engine worker threads (default: available parallelism)
//!   --csv FILE       suite: write the table as CSV
//! ```

use std::process::ExitCode;

use sfq_t1::bench::{csv_flag, jobs_flag, progress_line, table1_jobs, BenchmarkScale};
use sfq_t1::circuits::{epfl, iscas};
use sfq_t1::engine::SuiteRunner;
use sfq_t1::netlist::aiger;
use sfq_t1::netlist::Aig;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig, PhaseEngine};
use sfq_t1::t1map::report::{TableOne, TableRow};
use sfq_t1::t1map::to_pulse_circuit;
use sfq_t1::t1map::verilog::{cell_models, export, ExportOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: sfq-t1 <gen|map|verify|suite> ... (see --help in README)".to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("map") => cmd_map(&args[1..], false),
        Some("verify") => cmd_map(&args[1..], true),
        Some("suite") => cmd_suite(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'; {}", usage())),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_aig(path: &str) -> Result<Aig, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(b"aag") {
        let text = String::from_utf8(bytes).map_err(|e| e.to_string())?;
        aiger::read_ascii(&text).map_err(|e| e.to_string())
    } else if bytes.starts_with(b"aig") {
        aiger::read_binary(&bytes).map_err(|e| e.to_string())
    } else {
        Err(format!(
            "{path}: neither ASCII ('aag') nor binary ('aig') AIGER"
        ))
    }
}

/// Runs the full Table-I suite through the `sfq-engine` worker pool.
fn cmd_suite(args: &[String]) -> Result<(), String> {
    let small = has_flag(args, "--small");
    let phases: u32 = flag_value(args, "--phases")
        .map(|v| v.parse().map_err(|e| format!("bad --phases: {e}")))
        .transpose()?
        .unwrap_or(4);
    if phases < 3 {
        return Err("suite runs the T1 flow, which needs at least 3 phases".into());
    }
    // Shared parsers with the bench binaries: a bare `--csv` or malformed
    // `--jobs` is a hard error, not a silent fallback.
    let workers = jobs_flag(args)?;
    let csv_path = csv_flag(args)?;

    let scale = if small {
        BenchmarkScale::small()
    } else {
        BenchmarkScale::paper()
    };
    let lib = CellLibrary::default();
    println!(
        "Table I — multiphase clocking with T1 cells ({} scale, n = {phases} phases)\n",
        if small { "small" } else { "paper" }
    );
    let jobs = table1_jobs(&scale, phases, &lib);
    let report = SuiteRunner::new(workers).run_with_progress(&jobs, |o| {
        progress_line(format_args!(
            "  [{:>2}/{}] {:<14} {:>6} ANDs  {} in {:>7.1?}",
            o.completed,
            o.total,
            o.job.label(),
            o.job.aig.and_count(),
            if o.cache_hit { "cached" } else { "mapped" },
            o.duration
        ));
    });
    let mut table = TableOne::new();
    for (triple, job) in report.results.chunks(3).zip(jobs.iter().step_by(3)) {
        table.push(TableRow::from_stats(
            &job.name,
            triple[0].stats,
            triple[1].stats,
            triple[2].stats,
        ));
    }
    println!("\n{table}");
    progress_line(format_args!(
        "suite: {} jobs on {} workers in {:.1?} ({} cache hits, {} flow runs)",
        jobs.len(),
        report.workers,
        report.elapsed,
        report.cache.hits,
        report.cache.misses
    ));
    if let Some(path) = csv_path {
        std::fs::write(&path, table.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("CSV written to {path}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or(
        "gen: benchmark name required (adder, multiplier, square, sin, log2, voter, c6288, c7552)",
    )?;
    let width: usize = args
        .get(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.parse().map_err(|e| format!("bad width: {e}")))
        .transpose()?
        .unwrap_or(0);
    let out = flag_value(args, "-o").unwrap_or("out.aag");
    let aig = match name.as_str() {
        "adder" => epfl::adder(if width == 0 { 128 } else { width }),
        "multiplier" => epfl::multiplier(if width == 0 { 32 } else { width }),
        "square" => epfl::square(if width == 0 { 32 } else { width }),
        "sin" => epfl::sin(if width == 0 { 16 } else { width }),
        "log2" => epfl::log2(if width == 0 { 32 } else { width }),
        "voter" => epfl::voter(if width == 0 { 255 } else { width }),
        "c6288" => iscas::c6288_like(),
        "c7552" => iscas::c7552_like(),
        other => return Err(format!("unknown benchmark '{other}'")),
    };
    let payload = if out.ends_with(".aig") {
        aiger::write_binary(&aig)
    } else {
        aiger::write_ascii(&aig).into_bytes()
    };
    std::fs::write(out, payload).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{name}: {} inputs, {} outputs, {} AND gates -> {out}",
        aig.pi_count(),
        aig.po_count(),
        aig.and_count()
    );
    Ok(())
}

fn cmd_map(args: &[String], verify: bool) -> Result<(), String> {
    let path = args.first().ok_or("input AIGER file required")?;
    let aig = load_aig(path)?;
    let phases: u32 = flag_value(args, "--phases")
        .map(|v| v.parse().map_err(|e| format!("bad --phases: {e}")))
        .transpose()?
        .unwrap_or(4);
    let use_t1 = !has_flag(args, "--no-t1");
    if use_t1 && phases < 3 {
        return Err("T1 flows need at least 3 phases (use --no-t1 for fewer)".into());
    }
    let mut cfg = if use_t1 {
        FlowConfig::t1(phases)
    } else {
        FlowConfig::multiphase(phases)
    };
    if has_flag(args, "--exact") {
        cfg.engine = PhaseEngine::Exact;
    }
    let lib = CellLibrary::default();
    let res = run_flow(&aig, &lib, &cfg);
    println!(
        "{path}: {} ANDs -> {} gates + {} T1 cells ({} found)",
        aig.and_count(),
        res.stats.gates,
        res.stats.t1_used,
        res.stats.t1_found
    );
    println!(
        "  DFFs {}  splitters {}  area {} JJ  depth {} cycles (n = {phases})",
        res.stats.dffs, res.stats.splitters, res.stats.area, res.stats.depth_cycles
    );

    if let Some(dfile) = flag_value(args, "--dot") {
        std::fs::write(dfile, sfq_t1::t1map::dot::to_dot(&res))
            .map_err(|e| format!("cannot write {dfile}: {e}"))?;
        println!("  graphviz -> {dfile}");
    }
    if let Some(vfile) = flag_value(args, "--verilog") {
        let v = export(&res, &ExportOptions::default());
        std::fs::write(vfile, v).map_err(|e| format!("cannot write {vfile}: {e}"))?;
        println!("  structural Verilog -> {vfile}");
        if let Some(mfile) = flag_value(args, "--models") {
            std::fs::write(mfile, cell_models()).map_err(|e| e.to_string())?;
            println!("  cell models -> {mfile}");
        }
    }

    if verify {
        let waves: usize = flag_value(args, "--waves")
            .map(|v| v.parse().map_err(|e| format!("bad --waves: {e}")))
            .transpose()?
            .unwrap_or(8);
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
        let mut seed = 0xD1CE_F00D_u64 | 1;
        let vectors: Vec<Vec<bool>> = (0..waves)
            .map(|_| {
                (0..aig.pi_count())
                    .map(|_| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let outcome = pc.simulate(&vectors, phases).map_err(|e| e.to_string())?;
        for (k, v) in vectors.iter().enumerate() {
            if outcome.outputs[k] != aig.eval(v) {
                return Err(format!("verification FAILED on wave {k}"));
            }
        }
        println!(
            "  verified: {waves} waves wave-pipelined, {} hazards, {} pulses",
            outcome.hazards, outcome.pulses
        );
        if outcome.hazards > 0 {
            return Err("T1 pulse-overlap hazards detected".into());
        }
    }
    Ok(())
}
