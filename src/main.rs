//! `sfq-t1` — command-line front end for the T1-aware SFQ mapping flow.
//!
//! ```text
//! sfq-t1 gen <benchmark> [width] -o out.aag      generate a benchmark circuit
//! sfq-t1 map <in.aag|in.aig> [options]           run a mapping flow, print stats
//! sfq-t1 verify <in.aag|in.aig> [options]        map + wave-pipelined pulse-sim check
//! sfq-t1 opt <benchmark|in.aag> [width] [opts]   pre-mapping AIG optimization (sfq-opt)
//! sfq-t1 sta <benchmark|in.aag> [width] [opts]   static timing & slack analysis (sfq-sta)
//! sfq-t1 suite [options]                         Table-I suite through sfq-engine
//! sfq-t1 serve [options]                         batch flow service on stdin/stdout
//! sfq-t1 explore SPEC [options]                  design-space sweep + Pareto frontier
//! sfq-t1 store gc DIR --keep-newest N [opts]     evict old persistent-store entries
//! sfq-t1 bench-report [options]                  emit/validate BENCH_*.json perf reports
//! sfq-t1 bench-report diff BASE CUR [opts]       regression-diff two BENCH_*.json reports
//!
//! options:
//!   --phases N       number of clock phases (default 4)
//!   --no-t1          disable T1 detection (baseline flow)
//!   --exact          exact MILP phase assignment (small circuits)
//!   --pre-opt        map/verify/suite/sta: run the sfq-opt stage before mapping
//!   --verilog FILE   write structural Verilog (with --models FILE for cell models)
//!   --dot FILE       write a Graphviz visualization of the scheduled netlist
//!   --waves K        number of verification waves (verify; default 8)
//!   --small          suite: CI-scale benchmark widths
//!   --jobs N         suite/serve/explore: engine worker threads (default: available parallelism)
//!   --csv FILE       suite/explore: write the table as CSV
//!   --cache-dir DIR  suite/serve/explore: persistent result store (second runs hit it)
//!   --stats          suite: span rollups + store counters after the table
//!   --trace FILE     suite/opt/sta/explore: Chrome-trace JSON of the run (chrome://tracing)
//!   --bench-json F   suite/opt/sta/explore: schema-versioned BENCH_*.json perf report
//!
//! bench-report runs the Table-I suite and writes the perf-trajectory
//! report (default BENCH_table1.json; -o FILE overrides). It accepts the
//! suite options above plus `--check FILE` to only validate an existing
//! report against the current schema (the CI gate).
//!
//! bench-report diff compares two reports job-by-job (aligned on
//! benchmark×flow): deterministic quality metrics (gates, DFFs, area,
//! depth) regress on any increase; timing/allocation regress beyond
//! `--max-regress-pct N` (default 25). `--json` emits the machine
//! verdict instead of the table. Exits nonzero iff a job regressed.
//!
//! explore reads a sweep spec (axes: benchmarks, flows, phases, opt
//! pipelines, timing, cell-library variants; see `sfq_explore::spec`),
//! expands the cross product with fingerprint-deduplicated engine jobs,
//! runs it through the suite engine (honoring `--jobs`, `--cache-dir`,
//! `--trace`, `--bench-json`, `--csv`), prints the per-benchmark Pareto
//! frontier table and writes the schema-versioned `EXPLORE_*.json`
//! report (default `EXPLORE_<sweep>.json`; `-o FILE` overrides). With a
//! warm `--cache-dir` the rerun recomputes nothing (`0 flow runs`).
//!
//! store gc expires entries of a persistent `--cache-dir` result store:
//! keeps the `--keep-newest N` most recent entries, then keeps evicting
//! oldest-first while the store exceeds `--max-bytes B` (if given), and
//! always sweeps stale-format debris. Prints an eviction summary.
//!
//! serve reads one job request per stdin line
//! (`<benchmark>[:width] <1phi|nphi|t1> [phases] [pre-opt|slack-opt|dff-opt|timing|...]`,
//! `#` comments, `---` flushes the batch early) and streams one
//! `done <idx> ...` or `err <idx> ...` line per request to stdout. A
//! `stats` line responds immediately with a one-line flushed snapshot of
//! the session counters (`stats memory_hits=... p99_compute_us=...`).
//!
//! opt options:
//!   --passes LIST    comma-separated pass sequence (default strash,sweep,rewrite,balance)
//!   --slack-aware    use the slack-aware pipeline (rewrite may consume per-site slack)
//!   --dff-aware      use the DFF-objective pipeline (sites priced by per-edge DFF
//!                    cost under --phases clocking, default 4; --phases also
//!                    parameterizes rewrite-dff named via --passes, and errors
//!                    when no DFF-objective pass would read it)
//!   --fixpoint       iterate the sequence to convergence (guarded)
//!   --rounds N       fixpoint round limit (default 8)
//!   --verify         CEC the result against the input (simulation + SAT miter)
//!   --stats          per-pass table: node/depth deltas, analysis cache hits,
//!                    STA nodes refreshed vs rebuilt, wall time per pass
//!   -o FILE          write the optimized network as AIGER
//!
//! Unknown `opt` flags are a hard error listing every flag and pass name.
//!
//! sta options:
//!   --mapped         analyze the mapped + scheduled netlist (phase-granular
//!                    slack) instead of the unit-delay AIG
//!   --top-paths K    critical paths to extract (default 3)
//!   --csv FILE       write the per-node timing table as CSV
//! ```

use std::io::BufRead;
use std::process::ExitCode;

use sfq_t1::bench::{
    bench_json_flag, bench_report_json, csv_flag, diff_reports, fixpoint_opt_jobs, jobs_flag,
    pre_opt_flag, progress_event, progress_line, result_rows, store_flag, store_summary,
    suite_summary, table1_jobs_with, table_one, tool_report_json, trace_flag,
    validate_bench_report, BenchmarkScale, JobSample, ReportEntry, ReportMeta,
    DEFAULT_MAX_REGRESS_PCT,
};
use sfq_t1::engine::{DiskStore, Job, SuiteRunner};
use sfq_t1::explore::{explore_report_json, explore_summary, frontier_table};
use sfq_t1::netlist::aiger;
use sfq_t1::netlist::Aig;
use sfq_t1::opt::{
    optimize, optimize_verified, parse_passes, CecConfig, CecVerdict, OptConfig, PassKind,
};
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig, PhaseEngine};
use sfq_t1::t1map::to_pulse_circuit;
use sfq_t1::t1map::verilog::{cell_models, export, ExportOptions};

// Counting allocator wrapper: behaves exactly like the system allocator
// (one relaxed atomic load per call) until the recorder is enabled, then
// feeds the memory columns of traces, bench reports and serve stats.
#[global_allocator]
static ALLOC: sfq_t1::obs::alloc::CountingAlloc = sfq_t1::obs::alloc::CountingAlloc::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: sfq-t1 <gen|map|verify|opt|sta|suite|serve|explore|store|bench-report> ... \
     (see --help in README)"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("map") => cmd_map(&args[1..], false),
        Some("verify") => cmd_map(&args[1..], true),
        Some("opt") => cmd_opt(&args[1..]),
        Some("sta") => cmd_sta(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("bench-report") => cmd_bench_report(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'; {}", usage())),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_aig(path: &str) -> Result<Aig, String> {
    // Stream straight off the file through the buffered readers — a
    // million-node AIGER never materializes as one giant String/Vec here.
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let head = reader
        .fill_buf()
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    if head.starts_with(b"aag") {
        aiger::read_ascii_from(reader).map_err(|e| e.to_string())
    } else if head.starts_with(b"aig") {
        aiger::read_binary_from(reader).map_err(|e| e.to_string())
    } else {
        Err(format!(
            "{path}: neither ASCII ('aag') nor binary ('aig') AIGER"
        ))
    }
}

/// Builds the named benchmark at `width` (0 = the benchmark's default).
///
/// Delegates to the [`sfq_t1::circuits::named`] registry — the same one
/// the `serve` parser and the explore sweep spec resolve through — so
/// every interface agrees on the legal names and an unknown name is a
/// hard error listing every known benchmark.
fn build_benchmark(name: &str, width: usize) -> Result<Aig, String> {
    sfq_t1::circuits::named::build(name, width)
}

/// Resolves the `opt` subject: a known benchmark name or an AIGER file.
fn load_subject(name: &str, width: usize) -> Result<Aig, String> {
    if sfq_t1::circuits::named::is_known(name) {
        build_benchmark(name, width)
    } else if std::path::Path::new(name).exists() {
        load_aig(name)
    } else {
        Err(format!(
            "'{name}' is neither a known benchmark ({}) nor an existing AIGER file",
            sfq_t1::circuits::named::known_names().join(", ")
        ))
    }
}

/// Flags the `opt` subcommand accepts (`true` = the flag consumes the next
/// argument as its value). Anything else starting with `-` is a hard error
/// — see [`reject_unknown_flags`].
const OPT_FLAGS: [(&str, bool); 12] = [
    ("--passes", true),
    ("--slack-aware", false),
    ("--dff-aware", false),
    ("--phases", true),
    ("--fixpoint", false),
    ("--rounds", true),
    ("--verify", false),
    ("--rebuild-passes", false),
    ("--stats", false),
    ("--trace", true),
    ("--bench-json", true),
    ("-o", true),
];

/// Hard-errors on any `-`-prefixed argument outside `known`, listing every
/// accepted flag (plus any command-specific `notes`, e.g. `opt`'s pass
/// names) — the same no-silent-typo policy as unknown benchmark names.
fn reject_unknown_flags(
    cmd: &str,
    args: &[String],
    known: &[(&str, bool)],
    notes: &str,
) -> Result<(), String> {
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if !a.starts_with('-') {
            continue;
        }
        match known.iter().find(|(n, _)| n == a) {
            Some(&(_, takes_value)) => skip_value = takes_value,
            None => {
                let flags: Vec<&str> = known.iter().map(|&(n, _)| n).collect();
                return Err(format!(
                    "{cmd}: unknown flag '{a}' (flags: {}{notes})",
                    flags.join(", ")
                ));
            }
        }
    }
    Ok(())
}

/// Runs the `sfq-opt` pipeline standalone: per-pass stats table, optional
/// fixpoint iteration, optional SAT-checked equivalence, optional export.
fn cmd_opt(args: &[String]) -> Result<(), String> {
    let passes: Vec<&str> = PassKind::KNOWN.iter().map(|p| p.name()).collect();
    reject_unknown_flags(
        "opt",
        args,
        &OPT_FLAGS,
        &format!("; known passes: {}", passes.join(", ")),
    )?;
    let name = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("opt: benchmark name or AIGER file required")?;
    let width: usize = args
        .get(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.parse().map_err(|e| format!("bad width: {e}")))
        .transpose()?
        .unwrap_or(0);
    let aig = load_subject(name, width)?;

    if has_flag(args, "--slack-aware") && has_flag(args, "--dff-aware") {
        return Err("opt: --slack-aware and --dff-aware are mutually exclusive".into());
    }
    // --passes replaces the whole pipeline, so combining it with a preset
    // selector would silently discard the preset — hard-error instead.
    if flag_value(args, "--passes").is_some()
        && (has_flag(args, "--slack-aware") || has_flag(args, "--dff-aware"))
    {
        return Err(
            "opt: --passes replaces the whole pipeline; drop --slack-aware/--dff-aware \
             and name the passes directly (e.g. --passes strash,sweep,rewrite-dff,balance)"
                .into(),
        );
    }
    let mut config = if has_flag(args, "--slack-aware") {
        OptConfig::slack_aware()
    } else if has_flag(args, "--dff-aware") {
        OptConfig::dff_aware(4)
    } else {
        OptConfig::standard()
    };
    if let Some(list) = flag_value(args, "--passes") {
        config.passes = parse_passes(list)?;
    }
    // --phases parameterizes DFF-objective rewriting wherever it came from
    // (--dff-aware or a --passes list naming rewrite-dff); anywhere else it
    // would be a silent no-op, which is a hard error like any unknown flag.
    if let Some(p) = flag_value(args, "--phases") {
        let n: u32 = p
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --phases: '{p}' is not a positive integer"))?;
        let mut applied = false;
        for kind in &mut config.passes {
            if let PassKind::RewriteDff(m) = kind {
                *m = n;
                applied = true;
            }
        }
        if !applied {
            return Err(
                "opt: --phases only affects DFF-objective rewriting (use --dff-aware or \
                 --passes ...,rewrite-dff,...)"
                    .into(),
            );
        }
    }
    config.fixpoint = has_flag(args, "--fixpoint");
    // Strategy switch, not a result switch: the rebuild path must produce a
    // byte-identical network (CI compares the --stats hashes of both runs).
    config.rebuild_passes = has_flag(args, "--rebuild-passes");
    if let Some(r) = flag_value(args, "--rounds") {
        config.max_rounds = r
            .parse::<usize>()
            .ok()
            .filter(|&r| r >= 1)
            .ok_or_else(|| format!("bad --rounds: '{r}' is not a positive integer"))?;
    }

    // Same observation-only recorder as the suite: `--trace` and
    // `--bench-json` watch the run without changing its output.
    let trace_path = trace_flag(args)?;
    let bench_json_path = bench_json_flag(args)?;
    let observing = trace_path.is_some() || bench_json_path.is_some();
    if observing {
        sfq_t1::obs::enable();
    }
    let opt_start = std::time::Instant::now();

    let verify = has_flag(args, "--verify");
    let (optimized, report, verified) = if verify {
        // Pass-by-pass equivalence checking, chained by transitivity into
        // an end-to-end proof (tractable even at paper scale, where a
        // single original-vs-final miter would not be).
        let run = optimize_verified(&aig, &config, &CecConfig::default());
        (run.aig.clone(), run.report.clone(), Some(run))
    } else {
        let (optimized, report) = optimize(&aig, &config);
        (optimized, report, None)
    };
    let opt_micros = opt_start.elapsed().as_micros() as u64;
    println!(
        "{name}: {} PIs, {} POs, {} ANDs, depth {}",
        aig.pi_count(),
        aig.po_count(),
        aig.and_count(),
        aig.depth()
    );
    for (round, stats) in report.rounds.iter().enumerate() {
        for s in stats {
            println!("  round {:>2}  {s}", round + 1);
        }
    }
    let pct = if report.nodes_before > 0 {
        100.0 * report.node_delta() as f64 / report.nodes_before as f64
    } else {
        0.0
    };
    println!(
        "total: {} -> {} nodes ({pct:+.1}%), depth {} -> {}{}",
        report.nodes_before,
        report.nodes_after,
        report.depth_before,
        report.depth_after,
        if config.fixpoint && !report.converged {
            " (round limit reached)"
        } else {
            ""
        }
    );

    if has_flag(args, "--stats") {
        println!(
            "\n{:>5} {:<13} {:>15} {:>10} {:>7} {:>5} {:>6} {:>13} {:>9}",
            "round", "pass", "nodes", "depth", "applied", "hits", "inval", "STA refr/bld", "µs"
        );
        for (round, stats) in report.rounds.iter().enumerate() {
            for s in stats {
                println!(
                    "{:>5} {:<13} {:>7}->{:<7} {:>4}->{:<5} {:>7} {:>5} {:>6} {:>9}/{:<3} {:>9}",
                    round + 1,
                    s.pass,
                    s.nodes_before,
                    s.nodes_after,
                    s.depth_before,
                    s.depth_after,
                    s.applied,
                    s.cache_hits,
                    s.invalidations,
                    s.sta_refreshed,
                    s.sta_builds,
                    s.micros
                );
            }
        }
        // The in-place/rebuild identity contract, observable from the
        // shell: equal hashes here mean equal networks, bit for bit.
        println!("structural hash: {:#018x}", optimized.structural_hash());
        let a = &report.analysis;
        println!(
            "analysis cache: {} hits, {} invalidations, {} recomputes, {} STA builds, \
             {} rebinds ({} STA nodes refreshed incrementally)",
            a.cache_hits,
            a.invalidations,
            a.recomputes,
            a.sta_full_builds,
            a.sta_rebinds,
            a.sta_nodes_refreshed
        );
    }

    if let Some(run) = verified {
        match run.verdict {
            CecVerdict::Equivalent => println!(
                "verified equivalent: {} pass checks, {} simulation words, {} sweep merges, \
                 {} SAT queries{}",
                run.checked_stages,
                run.cec.sim_words,
                run.cec.sweep_merges,
                run.cec.sat_queries,
                if run.cec.used_final_sat {
                    " (miter discharged by SAT)"
                } else {
                    " (all outputs matched structurally)"
                }
            ),
            CecVerdict::NotEquivalent(cex) => {
                return Err(format!(
                    "CEC MISMATCH in pass '{}': differs on input {:?}",
                    run.failed_pass.unwrap_or("?"),
                    cex.iter().map(|&b| b as u8).collect::<Vec<_>>()
                ));
            }
            CecVerdict::Unknown => {
                return Err(format!(
                    "CEC inconclusive in pass '{}': the pass changed the PI/PO \
                     interface, or a configured solver budget ran out",
                    run.failed_pass.unwrap_or("?")
                ));
            }
        }
    }

    if let Some(out) = flag_value(args, "-o") {
        let payload = if out.ends_with(".aig") {
            aiger::write_binary(&optimized)
        } else {
            aiger::write_ascii(&optimized).into_bytes()
        };
        std::fs::write(out, payload).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("optimized AIGER -> {out}");
    }

    if observing {
        let trace = sfq_t1::obs::take();
        if let Some(path) = trace_path {
            std::fs::write(&path, trace.chrome_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("trace written to {path}");
        }
        if let Some(path) = bench_json_path {
            let mem = sfq_t1::obs::alloc::stats();
            let entry = ReportEntry {
                benchmark: name.to_string(),
                flow: "opt".to_string(),
                micros: opt_micros,
                source: "computed".to_string(),
                // Tool reports repurpose the AIG-shape columns: node
                // count and combinational depth of the optimized result.
                ands: optimized.and_count() as u64,
                depth_cycles: report.depth_after as u64,
                alloc_bytes: mem.allocated,
                peak_bytes: mem.peak,
                ..ReportEntry::default()
            };
            let text = tool_report_json("opt", &entry, opt_micros, &trace);
            validate_bench_report(&text)
                .map_err(|e| format!("internal: emitted report invalid: {e}"))?;
            std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("bench report written to {path}");
        }
    }
    Ok(())
}

/// Static timing analysis: unit-delay slack over the AIG, or phase-granular
/// schedule slack over the mapped netlist (`--mapped`).
fn cmd_sta(args: &[String]) -> Result<(), String> {
    use sfq_t1::sta::{AigSta, TimingReport};
    use sfq_t1::t1map::timing::analyze_mapped;

    let name = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("sta: benchmark name or AIGER file required")?;
    let width: usize = args
        .get(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.parse().map_err(|e| format!("bad width: {e}")))
        .transpose()?
        .unwrap_or(0);
    let top_paths: usize = flag_value(args, "--top-paths")
        .map(|v| v.parse().map_err(|e| format!("bad --top-paths: {e}")))
        .transpose()?
        .unwrap_or(3);
    let mut aig = load_subject(name, width)?;
    if has_flag(args, "--pre-opt") {
        aig = optimize(&aig, &OptConfig::standard()).0;
    }
    // Same observation-only recorder as the suite: `--trace` and
    // `--bench-json` watch the analysis without changing its output.
    let trace_path = trace_flag(args)?;
    let bench_json_path = bench_json_flag(args)?;
    let observing = trace_path.is_some() || bench_json_path.is_some();
    if observing {
        sfq_t1::obs::enable();
    }
    let sta_start = std::time::Instant::now();
    let mut report_depth = aig.depth() as u64;
    println!(
        "{name}: {} PIs, {} POs, {} ANDs, depth {}",
        aig.pi_count(),
        aig.po_count(),
        aig.and_count(),
        aig.depth()
    );

    if has_flag(args, "--mapped") {
        let phases: u32 = flag_value(args, "--phases")
            .map(|v| v.parse().map_err(|e| format!("bad --phases: {e}")))
            .transpose()?
            .unwrap_or(4);
        let use_t1 = !has_flag(args, "--no-t1");
        if use_t1 && phases < 3 {
            return Err("T1 flows need at least 3 phases (use --no-t1 for fewer)".into());
        }
        let cfg = if use_t1 {
            FlowConfig::t1(phases)
        } else {
            FlowConfig::multiphase(phases)
        };
        let lib = CellLibrary::default();
        let res = run_flow(&aig, &lib, &cfg);
        // One analysis serves the summary, the paths and the CSV (running
        // the flow's own timing stage here would analyze twice).
        let timing = analyze_mapped(&res.mapped, &res.schedule);
        let summary = timing.summary(&res.mapped, &res.schedule, &res.plan);
        report_depth = res.schedule.depth_cycles() as u64;
        println!(
            "mapped timing (n = {phases} phases): horizon {} stages ({} cycles), \
             {} scheduled cells",
            summary.horizon,
            res.schedule.depth_cycles(),
            summary.scheduled_cells
        );
        println!(
            "schedule slack: worst {}, total {} phases of headroom, {} zero-slack \
             cells ({:.1}%)",
            summary.worst_slack,
            summary.total_slack,
            summary.zero_slack_cells,
            100.0 * summary.zero_slack_cells as f64 / summary.scheduled_cells.max(1) as f64
        );
        println!(
            "DFF cost at this schedule: {} per-edge (§II-B objective), {} realized \
             with shared chains",
            summary.edge_dffs, summary.chained_dffs
        );
        let (paths, truncated) = timing.critical_paths_bounded(top_paths);
        for (i, p) in paths.iter().enumerate() {
            println!(
                "path #{} length {} stages, slack {} ({} cells): c{} -> ... -> c{}",
                i + 1,
                p.length,
                p.slack,
                p.nodes.len(),
                p.nodes.first().copied().unwrap_or(0),
                p.nodes.last().copied().unwrap_or(0)
            );
        }
        if truncated {
            println!("(path search budget exhausted — more paths exist than listed)");
        }
        if let Some(path) = flag_value(args, "--csv") {
            let mut csv = String::from("cell,stage,earliest,latest,slack\n");
            for (id, _) in res.mapped.cells() {
                let latest = timing.latest(id);
                if latest == i64::MAX {
                    continue;
                }
                csv.push_str(&format!(
                    "{},{},{},{},{}\n",
                    id.0,
                    res.schedule.stages[id.index()],
                    timing.earliest(id),
                    latest,
                    timing.schedule_slack(&res.schedule, id)
                ));
            }
            std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("timing CSV -> {path}");
        }
    } else {
        let sta = AigSta::new(&aig);
        let report = TimingReport::new(sta.graph(), sta.analysis(), top_paths);
        print!("unit-delay timing: {report}");
        if let Some(path) = flag_value(args, "--csv") {
            std::fs::write(path, TimingReport::node_csv(sta.graph(), sta.analysis()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("timing CSV -> {path}");
        }
    }

    if observing {
        let sta_micros = sta_start.elapsed().as_micros() as u64;
        let trace = sfq_t1::obs::take();
        if let Some(path) = trace_path {
            std::fs::write(&path, trace.chrome_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("trace written to {path}");
        }
        if let Some(path) = bench_json_path {
            let mem = sfq_t1::obs::alloc::stats();
            let entry = ReportEntry {
                benchmark: name.to_string(),
                flow: "sta".to_string(),
                micros: sta_micros,
                source: "computed".to_string(),
                ands: aig.and_count() as u64,
                depth_cycles: report_depth,
                alloc_bytes: mem.allocated,
                peak_bytes: mem.peak,
                ..ReportEntry::default()
            };
            let text = tool_report_json("sta", &entry, sta_micros, &trace);
            validate_bench_report(&text)
                .map_err(|e| format!("internal: emitted report invalid: {e}"))?;
            std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("bench report written to {path}");
        }
    }
    Ok(())
}

/// Runs the full Table-I suite through the `sfq-engine` worker pool.
fn cmd_suite(args: &[String]) -> Result<(), String> {
    let small = has_flag(args, "--small");
    let phases: u32 = flag_value(args, "--phases")
        .map(|v| v.parse().map_err(|e| format!("bad --phases: {e}")))
        .transpose()?
        .unwrap_or(4);
    if phases < 3 {
        return Err("suite runs the T1 flow, which needs at least 3 phases".into());
    }
    // Shared parsers with the bench binaries: a bare `--csv` or malformed
    // `--jobs` is a hard error, not a silent fallback.
    let workers = jobs_flag(args)?;
    let csv_path = csv_flag(args)?;
    let pre_opt = pre_opt_flag(args);
    let trace_path = trace_flag(args)?;
    let bench_json_path = bench_json_flag(args)?;
    let stats = has_flag(args, "--stats");
    // One recorder feeds every sink: the `--stats` summary table, the
    // `--trace` Chrome trace and the `--bench-json` span rollups are all
    // views of the same run. Observation only — the table and CSV are
    // byte-identical whether or not anything observes.
    let observing = stats || trace_path.is_some() || bench_json_path.is_some();
    if observing {
        sfq_t1::obs::enable();
    }

    let scale = if small {
        BenchmarkScale::small()
    } else {
        BenchmarkScale::paper()
    };
    let lib = CellLibrary::default();
    println!(
        "Table I — multiphase clocking with T1 cells ({} scale, n = {phases} phases{})\n",
        if small { "small" } else { "paper" },
        if pre_opt { ", pre-opt" } else { "" }
    );
    let jobs = table1_jobs_with(&scale, phases, &lib, pre_opt);
    let store = store_flag(args)?;
    let mut runner = SuiteRunner::new(workers);
    if let Some(store) = &store {
        runner = runner.with_store(store.clone());
    }
    let mut samples = vec![JobSample::default(); jobs.len()];
    let report = runner.run_with_progress(&jobs, |o| {
        samples[o.index] = JobSample::from_outcome(&o);
        progress_event(&o);
    });
    sfq_t1::obs::gauge("store.disk.entries", report.cache.disk.entries as i64);
    let trace = observing.then(sfq_t1::obs::take).unwrap_or_default();

    let table = table_one(&jobs, &report);
    println!("\n{table}");
    if store.is_some() || stats {
        println!("{}", store_summary(&report));
    }
    if stats {
        print!("{}", trace.summary());
    }
    progress_line(suite_summary(jobs.len(), &report));
    if let Some(path) = csv_path {
        std::fs::write(&path, table.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("CSV written to {path}");
    }
    if let Some(path) = trace_path {
        std::fs::write(&path, trace.chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let Some(path) = bench_json_path {
        let meta = ReportMeta {
            suite: "table1".to_string(),
            scale: if small { "small" } else { "paper" }.to_string(),
            phases,
            pre_opt,
        };
        let rows = result_rows(&jobs, &report);
        let text = bench_report_json(&meta, &jobs, &rows, &report, &samples, &trace);
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("bench report written to {path}");
    }
    Ok(())
}

/// Flags the `explore` subcommand accepts (see [`reject_unknown_flags`]).
const EXPLORE_FLAGS: [(&str, bool); 6] = [
    ("--jobs", true),
    ("--cache-dir", true),
    ("--trace", true),
    ("--bench-json", true),
    ("--csv", true),
    ("-o", true),
];

/// Runs a design-space sweep from a spec file: expansion with
/// fingerprint deduplication, execution through the suite engine (with
/// any `--cache-dir` result store), per-benchmark Pareto frontiers, and
/// the validated `EXPLORE_*.json` report.
fn cmd_explore(args: &[String]) -> Result<(), String> {
    reject_unknown_flags("explore", args, &EXPLORE_FLAGS, "")?;
    let spec_path = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("explore: sweep spec file required (see README §Design-space exploration)")?;
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = sfq_t1::explore::spec::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    let workers = jobs_flag(args)?;
    let csv_path = csv_flag(args)?;
    let trace_path = trace_flag(args)?;
    let bench_json_path = bench_json_flag(args)?;
    let store = store_flag(args)?;
    let observing = trace_path.is_some() || bench_json_path.is_some();
    if observing {
        sfq_t1::obs::enable();
    }

    let mut runner = SuiteRunner::new(workers);
    if let Some(store) = &store {
        runner = runner.with_store(store.clone());
    }
    println!(
        "explore '{}': {} benchmarks x {} flows x {} phase counts x {} opt x {} timing x \
         {} libraries",
        spec.name,
        spec.benchmarks.len(),
        spec.flows.len(),
        spec.phases.len(),
        spec.opts.len(),
        spec.timing.len(),
        spec.libraries.len()
    );
    let run = sfq_t1::explore::run_sweep(spec, &runner, progress_event)?;
    sfq_t1::obs::gauge("store.disk.entries", run.cache().disk.entries as i64);
    let trace = observing.then(sfq_t1::obs::take).unwrap_or_default();

    println!();
    print!("{}", frontier_table(&run));
    if store.is_some() {
        println!("{}", store_summary(&run.report));
    }
    println!("{}", explore_summary(&run));

    let out = flag_value(args, "-o")
        .map(str::to_string)
        .unwrap_or_else(|| format!("EXPLORE_{}.json", run.spec.name));
    let report_text = explore_report_json(&run);
    // A report that fails its own schema must never reach disk.
    sfq_t1::explore::validate(&report_text)
        .map_err(|e| format!("internal: emitted report invalid: {e}"))?;
    std::fs::write(&out, report_text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("explore report written to {out}");

    if let Some(path) = csv_path {
        std::fs::write(&path, sfq_t1::explore::report::points_csv(&run))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("CSV written to {path}");
    }
    if let Some(path) = trace_path {
        std::fs::write(&path, trace.chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let Some(path) = bench_json_path {
        let meta = ReportMeta {
            suite: "explore".to_string(),
            scale: run.spec.name.clone(),
            phases: run.spec.phases[0],
            pre_opt: run.spec.opts.contains(&"pre-opt"),
        };
        let rows = result_rows(&run.jobs, &run.report);
        let text = bench_report_json(&meta, &run.jobs, &rows, &run.report, &run.samples, &trace);
        validate_bench_report(&text)
            .map_err(|e| format!("internal: emitted report invalid: {e}"))?;
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("bench report written to {path}");
    }
    Ok(())
}

/// Flags the `store gc` verb accepts (see [`reject_unknown_flags`]).
const STORE_GC_FLAGS: [(&str, bool); 2] = [("--keep-newest", true), ("--max-bytes", true)];

/// `store <verb>` — maintenance of persistent `--cache-dir` result
/// stores. The only verb today is `gc`.
fn cmd_store(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gc") => cmd_store_gc(&args[1..]),
        Some(other) => Err(format!("store: unknown verb '{other}' (one of: gc)")),
        None => Err("store: verb required (one of: gc)".into()),
    }
}

/// `store gc DIR --keep-newest N [--max-bytes B]`: evicts all but the
/// newest `N` entries, then keeps evicting oldest-first until at most
/// `B` bytes remain (when given); stale-format debris is always swept.
fn cmd_store_gc(args: &[String]) -> Result<(), String> {
    reject_unknown_flags("store gc", args, &STORE_GC_FLAGS, "")?;
    let dir = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("store gc: cache directory required (the --cache-dir of previous runs)")?;
    let keep: usize = flag_value(args, "--keep-newest")
        .ok_or("store gc: --keep-newest N required")?
        .parse()
        .map_err(|e| format!("bad --keep-newest: {e}"))?;
    let max_bytes: Option<u64> = flag_value(args, "--max-bytes")
        .map(|v| v.parse().map_err(|e| format!("bad --max-bytes: {e}")))
        .transpose()?;
    let store = DiskStore::open(dir).map_err(|e| format!("cannot open store {dir}: {e}"))?;
    let s = store.gc_with_budget(keep, max_bytes);
    println!(
        "store gc: evicted {} entries ({} bytes); {} entries ({} bytes) remain in {dir}",
        s.removed, s.removed_bytes, s.remaining, s.remaining_bytes
    );
    Ok(())
}

/// Emits (or, with `--check`, validates) the schema-versioned
/// `BENCH_*.json` perf-trajectory report: the Table-I suite with tracing
/// on, rolled up into per-benchmark wall micros, result metrics,
/// cache-source breakdown and span totals.
fn cmd_bench_report(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("diff") {
        return cmd_bench_diff(&args[1..]);
    }
    if let Some(path) = flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        validate_bench_report(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: valid bench report");
        return Ok(());
    }
    let small = has_flag(args, "--small");
    let pre_opt = pre_opt_flag(args);
    let rebuild_passes = has_flag(args, "--rebuild-passes");
    let workers = jobs_flag(args)?;
    let store = store_flag(args)?;
    let out = flag_value(args, "-o").unwrap_or("BENCH_table1.json");
    let phases = 4u32;
    sfq_t1::obs::enable();

    let scale = if small {
        BenchmarkScale::small()
    } else {
        BenchmarkScale::paper()
    };
    let lib = CellLibrary::default();
    let mut jobs = table1_jobs_with(&scale, phases, &lib, pre_opt);
    // The allocation-sensitive rows: fixpoint optimization dominates their
    // alloc_bytes, so the diff against the committed baseline tracks the
    // in-place transform savings. `--rebuild-passes` measures the rebuild
    // strategy instead (used once to pin the baseline's "before" cost).
    jobs.extend(fixpoint_opt_jobs(&scale, phases, &lib, rebuild_passes));
    let mut runner = SuiteRunner::new(workers);
    if let Some(store) = &store {
        runner = runner.with_store(store.clone());
    }
    let mut samples = vec![JobSample::default(); jobs.len()];
    let report = runner.run_with_progress(&jobs, |o| {
        samples[o.index] = JobSample::from_outcome(&o);
        progress_event(&o);
    });
    sfq_t1::obs::gauge("store.disk.entries", report.cache.disk.entries as i64);
    let trace = sfq_t1::obs::take();
    progress_line(suite_summary(jobs.len(), &report));

    let meta = ReportMeta {
        suite: "table1".to_string(),
        scale: if small { "small" } else { "paper" }.to_string(),
        phases,
        pre_opt,
    };
    let rows = result_rows(&jobs, &report);
    let text = bench_report_json(&meta, &jobs, &rows, &report, &samples, &trace);
    // A report that fails its own schema must never reach disk.
    validate_bench_report(&text).map_err(|e| format!("internal: emitted report invalid: {e}"))?;
    std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("bench report written to {out}");
    Ok(())
}

/// `bench-report diff BASELINE CURRENT [--max-regress-pct N] [--json]`:
/// the regression gate. Prints the per-job table (or, with `--json`, the
/// machine-readable verdict) and fails — nonzero exit — iff any job
/// regressed beyond its allowance.
fn cmd_bench_diff(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = {
        // `--max-regress-pct` consumes its value; skip it when collecting.
        let mut out = Vec::new();
        let mut skip = false;
        for a in args {
            if skip {
                skip = false;
                continue;
            }
            if a == "--max-regress-pct" {
                skip = true;
            } else if !a.starts_with('-') {
                out.push(a);
            }
        }
        out
    };
    let [baseline, current] = positional.as_slice() else {
        return Err("bench-report diff: exactly two report files required \
             (usage: bench-report diff BASELINE CURRENT [--max-regress-pct N] [--json])"
            .into());
    };
    let pct: u64 = flag_value(args, "--max-regress-pct")
        .map(|v| v.parse().map_err(|e| format!("bad --max-regress-pct: {e}")))
        .transpose()?
        .unwrap_or(DEFAULT_MAX_REGRESS_PCT);
    let base_text =
        std::fs::read_to_string(baseline).map_err(|e| format!("cannot read {baseline}: {e}"))?;
    let cur_text =
        std::fs::read_to_string(current).map_err(|e| format!("cannot read {current}: {e}"))?;
    let diff = diff_reports(&base_text, &cur_text, pct)?;
    if has_flag(args, "--json") {
        print!("{}", diff.verdict_json());
    } else {
        print!("{}", diff.table());
    }
    if diff.ok() {
        Ok(())
    } else {
        let names: Vec<String> = diff
            .regressions()
            .iter()
            .map(|j| format!("{}/{}", j.benchmark, j.flow))
            .collect();
        Err(format!(
            "performance regression in {} job(s): {}",
            names.len(),
            names.join(", ")
        ))
    }
}

/// Long-running batch service: one job request per stdin line, one
/// `done`/`err` response line per request on stdout.
///
/// Request lines: `<benchmark>[:width] <1phi|nphi|t1> [phases]
/// [pre-opt|slack-opt|dff-opt] [timing]`. Blank lines and `#` comments are
/// ignored; `---` flushes the accumulated batch through the engine early
/// (responses stream back in completion order); EOF flushes and exits. All
/// requests share one result store for the whole session — with
/// `--cache-dir`, the persistent one.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, Write};

    let workers = jobs_flag(args)?;
    let store = store_flag(args)?
        .unwrap_or_else(|| std::sync::Arc::new(sfq_t1::engine::ResultCache::new()));
    let runner = SuiteRunner::new(workers).with_store(store.clone());
    let lib = CellLibrary::default();
    // The session-long recorder backs the `stats` control line and the
    // per-job memory fields of `done` lines. Span events are discarded
    // after every flush (only the cumulative counters and histograms
    // are kept), so recorder memory stays bounded over a long session.
    sfq_t1::obs::enable();

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    // Responses must reach a piped consumer promptly, so every response
    // line is flushed (stdout is block-buffered when not a terminal).
    let respond = |line: String| -> Result<(), String> {
        let mut out = stdout.lock();
        writeln!(out, "{line}")
            .and_then(|()| out.flush())
            .map_err(|e| e.to_string())
    };

    let mut batch: Vec<(usize, Job)> = Vec::new();
    let mut next_index = 0usize;
    let flush = |batch: &mut Vec<(usize, Job)>| -> Result<(), String> {
        if batch.is_empty() {
            return Ok(());
        }
        let jobs: Vec<Job> = batch.iter().map(|(_, j)| j.clone()).collect();
        let mut failure = None;
        runner.run_with_progress(&jobs, |o| {
            let (index, _) = batch[o.index];
            let s = o.stats;
            let line = format!(
                "done {index} {} source={} micros={} dffs={} splitters={} area={} depth={} \
                 gates={} t1={}/{} alloc_bytes={} peak_bytes={}",
                o.job.label(),
                o.source.serve_label(),
                o.duration.as_micros(),
                s.dffs,
                s.splitters,
                s.area,
                s.depth_cycles,
                s.gates,
                s.t1_used,
                s.t1_found,
                o.alloc_bytes,
                o.peak_bytes
            );
            if let Err(e) = respond(line) {
                failure.get_or_insert(e);
            }
        });
        batch.clear();
        sfq_t1::obs::discard_events();
        match failure {
            Some(e) => Err(format!("serve: cannot write response: {e}")),
            None => Ok(()),
        }
    };

    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("serve: cannot read stdin: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "---" {
            flush(&mut batch)?;
            continue;
        }
        if trimmed == "stats" {
            // Immediate flushed snapshot — no batch flush required, so a
            // monitoring client can poll mid-stream.
            respond(serve_stats_line(&store))?;
            continue;
        }
        let index = next_index;
        next_index += 1;
        match parse_serve_request(trimmed, &lib) {
            Ok(job) => batch.push((index, job)),
            Err(e) => respond(format!("err {index} {e}"))?,
        }
    }
    flush(&mut batch)
}

/// One-line counters/histogram snapshot for the serve `stats` control
/// line: session-lifetime cache counters, live/peak process memory and
/// compute-latency percentiles.
fn serve_stats_line(store: &sfq_t1::engine::ResultCache) -> String {
    let s = store.stats();
    let mem = sfq_t1::obs::alloc::stats();
    let (p50, p99) = match sfq_t1::obs::histogram("engine:compute") {
        Some(h) => (h.percentile(50), h.percentile(99)),
        None => (0, 0),
    };
    format!(
        "stats memory_hits={} disk_hits={} misses={} live_bytes={} peak_bytes={} \
         p50_compute_us={p50} p99_compute_us={p99}",
        s.memory_hits, s.disk_hits, s.misses, mem.live, mem.peak
    )
}

/// Parses one `serve` request line into a [`Job`] (see [`cmd_serve`]).
///
/// Subjects resolve through the shared [`sfq_t1::circuits::named`]
/// registry and option suffixes through the explore spec's
/// [`sfq_t1::explore::apply_config_token`] table, so `serve` and
/// `explore` accept the same spellings and reject unknown tokens with
/// the same exhaustive list.
fn parse_serve_request(line: &str, lib: &CellLibrary) -> Result<Job, String> {
    let mut fields = line.split_whitespace();
    let subject = fields.next().ok_or("benchmark required")?;
    let (label, aig) = sfq_t1::circuits::named::build_subject(subject)?;

    let flow = fields
        .next()
        .ok_or("flow required (one of: 1phi, nphi, t1)")?;
    let mut rest = fields.peekable();
    let phases: u32 = match rest.peek().and_then(|t| t.parse().ok()) {
        Some(n) => {
            rest.next();
            n
        }
        None => 4,
    };
    let mut builder = match flow {
        "1phi" => FlowConfig::single_phase().to_builder(),
        "nphi" => FlowConfig::multiphase(phases).to_builder(),
        "t1" => {
            if phases < 3 {
                return Err(format!("t1 needs at least 3 phases, got {phases}"));
            }
            FlowConfig::t1(phases).to_builder()
        }
        other => return Err(format!("unknown flow '{other}' (one of: 1phi, nphi, t1)")),
    };
    for opt in rest {
        builder = sfq_t1::explore::apply_config_token(builder, opt)?;
    }
    Ok(Job::new(
        label,
        flow,
        std::sync::Arc::new(aig),
        *lib,
        builder.build(),
    ))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or(
        "gen: benchmark name required (random, or a registry name: adder, multiplier, \
         square, sin, log2, voter, c6288, c7552, scale-100k)",
    )?;
    let width: usize = args
        .get(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.parse().map_err(|e| format!("bad width: {e}")))
        .transpose()?
        .unwrap_or(0);
    let out = flag_value(args, "-o").unwrap_or("out.aag");
    let aig = if name == "random" {
        // Scale-class generator: `gen random --nodes N --seed S` emits a
        // seeded random network in the same shape as the `scale-100k`
        // registry entry, so CI smoke sizes are a one-flag choice.
        let nodes: usize = flag_value(args, "--nodes")
            .ok_or("gen random: --nodes <count> required")?
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("gen random: --nodes must be a positive integer")?;
        let seed: u64 = flag_value(args, "--seed")
            .map(|s| {
                s.parse()
                    .map_err(|e| format!("gen random: bad --seed: {e}"))
            })
            .transpose()?
            .unwrap_or(sfq_t1::circuits::named::SCALE_SEED);
        sfq_t1::circuits::random::random_aig(
            seed,
            &sfq_t1::circuits::random::RandomAigConfig {
                num_pis: 64,
                num_gates: nodes,
                num_pos: 32,
                xor_percent: 30,
            },
        )
    } else {
        build_benchmark(name, width)?
    };
    let payload = if out.ends_with(".aig") {
        aiger::write_binary(&aig)
    } else {
        aiger::write_ascii(&aig).into_bytes()
    };
    std::fs::write(out, payload).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{name}: {} inputs, {} outputs, {} AND gates -> {out}",
        aig.pi_count(),
        aig.po_count(),
        aig.and_count()
    );
    Ok(())
}

fn cmd_map(args: &[String], verify: bool) -> Result<(), String> {
    let path = args.first().ok_or("input AIGER file required")?;
    let aig = load_aig(path)?;
    let phases: u32 = flag_value(args, "--phases")
        .map(|v| v.parse().map_err(|e| format!("bad --phases: {e}")))
        .transpose()?
        .unwrap_or(4);
    let use_t1 = !has_flag(args, "--no-t1");
    if use_t1 && phases < 3 {
        return Err("T1 flows need at least 3 phases (use --no-t1 for fewer)".into());
    }
    let mut cfg = if use_t1 {
        FlowConfig::t1(phases)
    } else {
        FlowConfig::multiphase(phases)
    };
    if has_flag(args, "--exact") {
        cfg.engine = PhaseEngine::Exact;
    }
    if has_flag(args, "--pre-opt") {
        cfg = cfg.to_builder().standard_opt().build();
    }
    let lib = CellLibrary::default();
    let res = run_flow(&aig, &lib, &cfg);
    println!(
        "{path}: {} ANDs -> {} gates + {} T1 cells ({} found)",
        aig.and_count(),
        res.stats.gates,
        res.stats.t1_used,
        res.stats.t1_found
    );
    println!(
        "  DFFs {}  splitters {}  area {} JJ  depth {} cycles (n = {phases})",
        res.stats.dffs, res.stats.splitters, res.stats.area, res.stats.depth_cycles
    );

    if let Some(dfile) = flag_value(args, "--dot") {
        std::fs::write(dfile, sfq_t1::t1map::dot::to_dot(&res))
            .map_err(|e| format!("cannot write {dfile}: {e}"))?;
        println!("  graphviz -> {dfile}");
    }
    if let Some(vfile) = flag_value(args, "--verilog") {
        let v = export(&res, &ExportOptions::default());
        std::fs::write(vfile, v).map_err(|e| format!("cannot write {vfile}: {e}"))?;
        println!("  structural Verilog -> {vfile}");
        if let Some(mfile) = flag_value(args, "--models") {
            std::fs::write(mfile, cell_models()).map_err(|e| e.to_string())?;
            println!("  cell models -> {mfile}");
        }
    }

    if verify {
        let waves: usize = flag_value(args, "--waves")
            .map(|v| v.parse().map_err(|e| format!("bad --waves: {e}")))
            .transpose()?
            .unwrap_or(8);
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
        let mut seed = 0xD1CE_F00D_u64 | 1;
        let vectors: Vec<Vec<bool>> = (0..waves)
            .map(|_| {
                (0..aig.pi_count())
                    .map(|_| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let outcome = pc.simulate(&vectors, phases).map_err(|e| e.to_string())?;
        for (k, v) in vectors.iter().enumerate() {
            if outcome.outputs[k] != aig.eval(v) {
                return Err(format!("verification FAILED on wave {k}"));
            }
        }
        println!(
            "  verified: {waves} waves wave-pipelined, {} hazards, {} pulses",
            outcome.hazards, outcome.pulses
        );
        if outcome.hazards > 0 {
            return Err("T1 pulse-overlap hazards detected".into());
        }
    }
    Ok(())
}
