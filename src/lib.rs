//! # sfq-t1
//!
//! A complete, from-scratch reproduction of
//! *"Unleashing the Power of T1-cells in SFQ Arithmetic Circuits"*
//! (R. Bairamkulov, M. Yu, G. De Micheli — DATE 2024), as a Rust workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`netlist`] | AIGs, truth tables, cut enumeration, NPN matching, MFFC |
//! | [`solver`] | simplex LP, branch-and-bound MILP, CDCL SAT, CP, difference constraints |
//! | [`circuits`] | EPFL-like and ISCAS-like benchmark generators |
//! | [`sim`] | pulse-level SFQ simulator with behavioural T1 cell |
//! | [`opt`] | pass-manager-driven AIG optimization with SAT-checked equivalence |
//! | [`sta`] | static timing & slack analysis (arrival/required propagation, critical paths) |
//! | [`t1map`] | the paper's flow: T1 detection, multiphase phase assignment, DFF insertion |
//! | [`engine`] | parallel batch-flow execution with content-addressed result caching |
//! | [`obs`] | opt-in tracing & metrics: spans, counters, Chrome-trace and summary sinks |
//! | [`mod@bench`] | paper benchmark suites, engine job lists, progress helper |
//! | [`explore`] | design-space sweeps: spec expansion, Pareto frontiers, explore reports |
//!
//! This facade crate re-exports everything and hosts the runnable examples
//! and cross-crate integration tests.
//!
//! # Quickstart
//!
//! ```
//! use sfq_t1::t1map::cells::CellLibrary;
//! use sfq_t1::t1map::flow::{run_flow, FlowConfig};
//! use sfq_t1::circuits::epfl;
//!
//! let aig = epfl::adder(16);
//! let lib = CellLibrary::default();
//! let baseline = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
//! let proposed = run_flow(&aig, &lib, &FlowConfig::t1(4));
//! assert!(proposed.stats.area < baseline.stats.area, "T1 wins on adders");
//! ```

pub use sfq_bench as bench;
pub use sfq_circuits as circuits;
pub use sfq_engine as engine;
pub use sfq_explore as explore;
pub use sfq_netlist as netlist;
pub use sfq_obs as obs;
pub use sfq_opt as opt;
pub use sfq_sim as sim;
pub use sfq_solver as solver;
pub use sfq_sta as sta;
pub use t1map;
