//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the exact surface it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges and
//! [`Rng::gen_bool`]. The generator is a splitmix64 stream — statistically
//! solid for test-circuit generation, deterministic in the seed, and **not**
//! bit-compatible with the real `rand::rngs::StdRng` (callers in this
//! workspace only rely on determinism, never on a specific stream).

use core::ops::Range;

/// A seedable RNG, mirroring `rand::SeedableRng`'s `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Maps a raw `u64` draw into `range`.
    fn from_u64_in(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64_in(raw: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64-bit draw from the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the half-open integer `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::from_u64_in(self.next_u64(), range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 bits of mantissa, same construction as rand's `standard` float.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood) — passes BigCrush as a stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
