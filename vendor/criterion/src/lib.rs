//! Offline stand-in for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the surface its benches consume: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement is deliberately simple — per benchmark it calibrates an
//! iteration count to a small time budget, runs `sample_size` samples, and
//! prints the minimum/mean per-iteration time. No statistics, plots, or
//! baseline comparison; the goal is that `cargo bench` compiles, runs, and
//! prints usable numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark, e.g. `("t1", "adder")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, first calibrating how many iterations fit the time
    /// budget, then recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one sample takes >= 1ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / self.iters_per_sample as f64;
        let min = self
            .samples
            .iter()
            .map(&per_iter)
            .fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().map(&per_iter).sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<50} min {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("trivial", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("with-input", "x"), &input, |b, &i| {
            b.iter(|| black_box(i * 2));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("t1", "adder").to_string(), "t1/adder");
    }
}
