//! Offline stand-in for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the surface its property tests consume: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/[`prop_assume!`],
//! [`any`], integer-range and tuple [`Strategy`] impls,
//! [`collection::vec`] and [`ProptestConfig`].
//!
//! Semantics relative to the real crate:
//!
//! - cases are drawn from a deterministic per-test RNG (seeded from the test
//!   name), so failures are reproducible run-to-run;
//! - there is **no shrinking** — a failure reports the assertion message of
//!   the raw failing case;
//! - `prop_assume!` rejects the case; a test aborts if rejections dwarf the
//!   requested case count.

use core::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 stream driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so each test draws reproducible
    /// cases independent of sibling tests.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed tweak.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x5F10_0000_0000_0001u64,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a generated case did not pass: rejected by `prop_assume!` (retry with
/// a fresh case) or failed an assertion (abort the test).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition.
    Reject(String),
    /// The case failed a `prop_assert*!` assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration, mirroring the fields this workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A generator of values of one type — the (unshrunk) core of proptest's
/// `Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "anything goes" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (only `vec` is provided).

    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Element-count specification for [`fn@vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(strategy, 4)` or `vec(strategy, 1..8)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! The `prop::` path alias used by `prop::collection::vec(..)`.
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }` item
/// becomes a `#[test]` that draws `cases` random inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > cfg.max_global_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({}): last: {}",
                                    stringify!($name), rejected, why
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed on case {} of {}: {}",
                                stringify!($name), passed + 1, cfg.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` for proptest bodies: fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case unless `cond` holds; the runner retries with a
/// fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..500 {
            assert!((1..=6).contains(&(1usize..=6).sample(&mut rng)));
            assert!((-3..4).contains(&(-3i32..4).sample(&mut rng)));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::deterministic("vec_strategy_respects_sizes");
        let s = prop::collection::vec(any::<u8>(), 6..60);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((6..60).contains(&v.len()));
        }
        let fixed = prop::collection::vec(any::<bool>(), 4);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(x in 0u64..100, (a, neg) in (0usize..7, any::<bool>()),
                            v in prop::collection::vec(-3i32..4, 1..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(a, a, "identity on {}", a);
            prop_assert_ne!(i64::from(neg), 2i64);
            prop_assert!(v.iter().all(|e| (-3..4).contains(e)));
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
