//! Power/energy estimation of mapped designs (the paper's §I motivation:
//! RSFQ dissipates orders of magnitude less than CMOS).
//!
//! Maps a 16-bit adder with the baseline and T1 flows, measures switching
//! activity in the pulse simulator, and prints the first-order RSFQ power
//! breakdown at 20 GHz.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example power_estimate
//! ```

use sfq_t1::circuits::epfl;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::energy::{report_from_sim, EnergyModel};
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::to_pulse_circuit;

fn main() {
    let aig = epfl::adder(16);
    let lib = CellLibrary::default();
    let model = EnergyModel::default();
    let clock_hz = 20e9;
    let waves = 32;

    // Random operand stream.
    let mut seed = 0x5EED_CAFE_u64 | 1;
    let vectors: Vec<Vec<bool>> = (0..waves)
        .map(|_| {
            (0..aig.pi_count())
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed & 1 == 1
                })
                .collect()
        })
        .collect();

    println!(
        "16-bit adder @ {:.0} GHz, {waves} random waves\n",
        clock_hz / 1e9
    );
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "flow", "JJs", "pulses/wave", "dynamic [W]", "static [W]", "total [W]"
    );
    for (name, cfg) in [
        ("4-phase baseline", FlowConfig::multiphase(4)),
        ("4-phase + T1", FlowConfig::t1(4)),
    ] {
        let res = run_flow(&aig, &lib, &cfg);
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
        let outcome = pc.simulate(&vectors, cfg.phases).expect("valid schedule");
        assert_eq!(outcome.hazards, 0);
        let report = report_from_sim(&model, res.stats.area, &outcome, waves, clock_hz);
        println!(
            "{:<18} {:>8} {:>12.1} {:>12.3e} {:>12.3e} {:>12.3e}",
            name,
            res.stats.area,
            outcome.pulses as f64 / waves as f64,
            report.dynamic_power_w,
            report.static_power_w,
            report.total_power_w
        );
    }
    println!(
        "\npulse energy: {:.2e} J (I_c · Φ₀); classic bias-resistor RSFQ is \
         static-dominated, so area savings translate directly into power savings",
        model.critical_current_a * model.flux_quantum_wb
    );
}
