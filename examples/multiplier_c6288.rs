//! ISCAS-85 c6288 (a 16×16 array multiplier) through the T1 flow, verified
//! wave-pipelined in the pulse simulator.
//!
//! Array multipliers are carry-save-adder fabrics — full adders everywhere —
//! so T1 detection finds hundreds of candidates (paper: 142 found/used on
//! c6288).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example multiplier_c6288
//! ```

use sfq_t1::circuits::iscas;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::to_pulse_circuit;

fn main() {
    let aig = iscas::c6288_like();
    let lib = CellLibrary::default();
    println!(
        "c6288-like 16x16 multiplier: {} AND nodes, depth {}\n",
        aig.and_count(),
        aig.depth()
    );

    let multi = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
    let t1 = run_flow(&aig, &lib, &FlowConfig::t1(4));
    println!(
        "4-phase baseline: DFFs {:>5}  area {:>6} JJ  depth {:>2} cycles",
        multi.stats.dffs, multi.stats.area, multi.stats.depth_cycles
    );
    println!(
        "4-phase + T1:     DFFs {:>5}  area {:>6} JJ  depth {:>2} cycles  (T1 used: {})",
        t1.stats.dffs, t1.stats.area, t1.stats.depth_cycles, t1.stats.t1_used
    );
    println!(
        "area ratio {:.2} (paper: 0.91), depth ratio {:.2} (paper: 1.25)\n",
        t1.stats.area as f64 / multi.stats.area as f64,
        t1.stats.depth_cycles as f64 / multi.stats.depth_cycles as f64
    );

    // Stream eight multiplications through the pipelined T1 implementation.
    let pc = to_pulse_circuit(&t1.mapped, &t1.schedule, &t1.plan);
    let pairs: [(u64, u64); 8] = [
        (3, 5),
        (0xFFFF, 0xFFFF),
        (12345, 54321),
        (255, 257),
        (1, 0),
        (40000, 2),
        (31415, 9265),
        (65535, 1),
    ];
    let vectors: Vec<Vec<bool>> = pairs
        .iter()
        .map(|&(a, b)| {
            (0..16)
                .map(move |i| (a >> i) & 1 == 1)
                .chain((0..16).map(move |i| (b >> i) & 1 == 1))
                .collect()
        })
        .collect();
    let out = pc.simulate(&vectors, 4).expect("valid schedule");
    assert_eq!(out.hazards, 0);
    println!(
        "wave-pipelined verification ({} waves, 0 hazards):",
        pairs.len()
    );
    for (k, &(a, b)) in pairs.iter().enumerate() {
        let p: u64 = out.outputs[k]
            .iter()
            .enumerate()
            .map(|(i, &bit)| (bit as u64) << i)
            .sum();
        assert_eq!(p, a * b, "wave {k}");
        println!("  {a:>5} x {b:>5} = {p:>10}  ok");
    }
}
