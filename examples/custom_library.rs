//! Exploring the design space with a custom cell library: how does the T1
//! advantage change as the relative cost of DFFs and T1 cells varies?
//!
//! The JJ counts of real fabrication processes differ; the `CellLibrary` is
//! fully parametric, so a user can evaluate the flow for their own PDK.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_library
//! ```

use sfq_t1::circuits::epfl;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};

fn main() {
    let aig = epfl::adder(32);
    println!("32-bit adder under varying cell libraries\n");
    println!(
        "{:<28} {:>9} {:>9} {:>7}",
        "library", "4φ area", "T1 area", "ratio"
    );

    let mut default_lib = CellLibrary::default();
    run_one("default", &aig, &default_lib);

    // An expensive-DFF process (e.g. larger storage loops): path balancing
    // dominates, and the T1's DFF savings matter more.
    let dff_heavy = CellLibrary {
        dff: 12,
        ..CellLibrary::default()
    };
    run_one("expensive DFFs (12 JJ)", &aig, &dff_heavy);

    // A cheap-DFF process compresses the T1 advantage.
    let dff_light = CellLibrary {
        dff: 3,
        ..CellLibrary::default()
    };
    run_one("cheap DFFs (3 JJ)", &aig, &dff_light);

    // A bulky T1 cell (conservative margins on the counter loop) can lose:
    // the flow then simply selects fewer T1 groups.
    let t1_heavy = CellLibrary {
        t1_core: 45,
        ..CellLibrary::default()
    };
    run_one("bulky T1 core (45 JJ)", &aig, &t1_heavy);

    // Bigger baseline majority cells favour the T1.
    default_lib.maj3 = 24;
    run_one("large MAJ3 (24 JJ)", &aig, &default_lib);
}

fn run_one(name: &str, aig: &sfq_t1::netlist::Aig, lib: &CellLibrary) {
    let multi = run_flow(aig, lib, &FlowConfig::multiphase(4));
    let t1 = run_flow(aig, lib, &FlowConfig::t1(4));
    println!(
        "{:<28} {:>9} {:>9} {:>7.2}  (T1 used: {})",
        name,
        multi.stats.area,
        t1.stats.area,
        t1.stats.area as f64 / multi.stats.area as f64,
        t1.stats.t1_used
    );
}
