//! Quickstart: map a 16-bit adder with all three flows and compare.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sfq_t1::circuits::epfl;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::to_pulse_circuit;

fn main() {
    let bits = 16;
    let aig = epfl::adder(bits);
    let lib = CellLibrary::default();
    println!(
        "{bits}-bit ripple-carry adder: {} AND nodes, depth {}\n",
        aig.and_count(),
        aig.depth()
    );

    for (name, cfg) in [
        ("1-phase baseline", FlowConfig::single_phase()),
        ("4-phase baseline", FlowConfig::multiphase(4)),
        ("4-phase + T1    ", FlowConfig::t1(4)),
    ] {
        let res = run_flow(&aig, &lib, &cfg);
        println!(
            "{name}:  gates {:>3}  T1 {:>2}  DFFs {:>4}  splitters {:>3}  area {:>5} JJ  depth {:>2} cycles",
            res.stats.gates,
            res.stats.t1_used,
            res.stats.dffs,
            res.stats.splitters,
            res.stats.area,
            res.stats.depth_cycles,
        );
    }

    // Verify the T1 result end to end in the pulse-level simulator:
    // stream a few waves through the pipelined circuit.
    let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
    let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
    let vectors: Vec<Vec<bool>> = (0..4u64)
        .map(|k| {
            let a = 0x1234u64.wrapping_mul(k + 1) & 0xFFFF;
            let b = 0xBEEFu64.wrapping_mul(k + 1) & 0xFFFF;
            (0..bits)
                .map(|i| (a >> i) & 1 == 1)
                .chain((0..bits).map(|i| (b >> i) & 1 == 1))
                .collect()
        })
        .collect();
    let outcome = pc.simulate(&vectors, 4).expect("schedule is valid");
    println!(
        "\npulse simulation: {} waves, {} hazards, {} pulses",
        vectors.len(),
        outcome.hazards,
        outcome.pulses
    );
    for (k, out) in outcome.outputs.iter().enumerate() {
        let sum: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        let a = 0x1234u64.wrapping_mul(k as u64 + 1) & 0xFFFF;
        let b = 0xBEEFu64.wrapping_mul(k as u64 + 1) & 0xFFFF;
        assert_eq!(sum, a + b, "wave {k}");
        println!("  wave {k}: {a:#06x} + {b:#06x} = {sum:#07x}  ok");
    }
}
