//! The paper's headline result: the 128-bit adder, where "almost the entire
//! circuit is replaced with the T1-FFs, yielding a 25% improvement in area".
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example adder128
//! ```

use sfq_t1::circuits::epfl;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};

fn main() {
    let aig = epfl::adder128();
    let lib = CellLibrary::default();
    println!(
        "128-bit adder: {} PIs, {} POs, {} AND nodes, AIG depth {}\n",
        aig.pi_count(),
        aig.po_count(),
        aig.and_count(),
        aig.depth()
    );

    let single = run_flow(&aig, &lib, &FlowConfig::single_phase());
    let multi = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
    let t1 = run_flow(&aig, &lib, &FlowConfig::t1(4));

    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "", "1-phase", "4-phase", "4-phase+T1"
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "T1 found/used",
        "-",
        "-",
        format!("{}/{}", t1.stats.t1_found, t1.stats.t1_used)
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "path-balancing DFF", single.stats.dffs, multi.stats.dffs, t1.stats.dffs
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "area [JJ]", single.stats.area, multi.stats.area, t1.stats.area
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "depth [cycles]",
        single.stats.depth_cycles,
        multi.stats.depth_cycles,
        t1.stats.depth_cycles
    );

    let area_gain = 1.0 - t1.stats.area as f64 / multi.stats.area as f64;
    let dff_gain = 1.0 - t1.stats.dffs as f64 / multi.stats.dffs as f64;
    println!(
        "\nvs 4-phase baseline: area -{:.0}%  DFFs -{:.0}%  depth +{:.0}%",
        area_gain * 100.0,
        dff_gain * 100.0,
        (t1.stats.depth_cycles as f64 / multi.stats.depth_cycles as f64 - 1.0) * 100.0
    );
    println!(
        "(paper, Table I row `adder`: area -25%, DFFs -25%, depth +3%; \
         T1 found/used 127/127)"
    );

    // The mapped netlists stay functionally equivalent to the AIG.
    let mut state = 0xC0FFEE123456789u64;
    for _ in 0..8 {
        let inputs: Vec<u64> = (0..aig.pi_count())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        assert_eq!(aig.eval64(&inputs), t1.mapped.eval64(&inputs));
    }
    println!("\nfunctional equivalence on 512 random vectors: ok");
}
