//! Reproduces Fig. 1b (the T1 pulse waveform) and Fig. 1c (the T1 full
//! adder under multiphase clocking) of the paper.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example t1_full_adder
//! ```

use sfq_t1::sim::pulse::{Fanin, OutRef, PulseCircuit};
use sfq_t1::sim::t1cell::T1Cell;

/// Fig. 1b: drive the cell with the paper's pulse script — epochs carrying
/// `a`, then `a b`, then `a b c` — and print the observed events.
fn fig1b() {
    println!("=== Fig. 1b: T1 cell simulation ===");
    println!("{:<8} {:<10} {:<6} outputs", "time", "input", "loop");
    let mut t1 = T1Cell::new(500);
    let apply = |t1: &mut T1Cell, time: u64, input: &str| {
        let events = if input == "clock(R)" {
            t1.pulse_r(time)
        } else {
            t1.pulse_t(time)
        };
        let evs: Vec<String> = events.iter().map(|e| format!("{e:?}")).collect();
        println!(
            "{:<8} {:<10} {:<6} {}",
            time,
            input,
            t1.state() as u8,
            evs.join(" ")
        );
    };
    // Epoch 1: a
    apply(&mut t1, 1000, "a");
    apply(&mut t1, 4000, "clock(R)");
    // Epoch 2: a, b
    apply(&mut t1, 5000, "a");
    apply(&mut t1, 6000, "b");
    apply(&mut t1, 8000, "clock(R)");
    // Epoch 3: a, b, c
    apply(&mut t1, 9000, "a");
    apply(&mut t1, 10000, "b");
    apply(&mut t1, 11000, "c");
    apply(&mut t1, 12000, "clock(R)");
    assert_eq!(t1.hazards(), 0);
    println!("hazards: {}\n", t1.hazards());
}

/// Fig. 1c: the full adder built from one T1 cell; the operands are
/// released at phases φ0, φ1, φ2 of a 4-phase epoch and the cell is read
/// (R = clock) at the next φ0. All eight operand combinations are streamed
/// wave-pipelined.
fn fig1c() {
    println!("=== Fig. 1c: T1 full adder, 4-phase clocking ===");
    let mut c = PulseCircuit::new();
    let a = c.add_input();
    let b = c.add_input();
    let cin = c.add_input();
    // Release DFFs at stages 1 (φ1), 2 (φ2), 3 (φ3): temporally separated.
    let da = c.add_dff(Fanin::plain(a), 1);
    let db = c.add_dff(Fanin::plain(b), 2);
    let dc = c.add_dff(Fanin::plain(cin), 3);
    let t1 = c.add_t1([Fanin::plain(da), Fanin::plain(db), Fanin::plain(dc)], 4);
    c.add_output(
        Fanin {
            source: OutRef { elem: t1, port: 0 },
            invert: false,
        },
        5,
    ); // S
    c.add_output(
        Fanin {
            source: OutRef { elem: t1, port: 1 },
            invert: false,
        },
        5,
    ); // C
    c.add_output(
        Fanin {
            source: OutRef { elem: t1, port: 2 },
            invert: false,
        },
        5,
    ); // Q

    let vectors: Vec<Vec<bool>> = (0..8u32)
        .map(|i| (0..3).map(|k| (i >> k) & 1 == 1).collect())
        .collect();
    let (out, trace) = c
        .simulate_traced(&vectors, 4, Some(&[a, b, cin, da, db, dc, t1]))
        .expect("valid schedule");
    println!("pulse waveform (first epochs; '|' clock, '*' pulse, '#' both):");
    println!(
        "{}",
        sfq_t1::sim::render_waveform(
            &trace,
            &[
                (a, "a"),
                (b, "b"),
                (cin, "cin"),
                (da, "dff@phi1"),
                (db, "dff@phi2"),
                (dc, "dff@phi3"),
                (t1, "T1"),
            ],
            34,
        )
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "a b cin", "S (xor3)", "C (maj3)", "Q (or3)"
    );
    for (i, o) in out.outputs.iter().enumerate() {
        println!(
            "{} {} {}    {:>10} {:>12} {:>12}",
            i & 1,
            (i >> 1) & 1,
            (i >> 2) & 1,
            o[0] as u8,
            o[1] as u8,
            o[2] as u8
        );
        let ones = (i as u32).count_ones();
        assert_eq!(o[0], ones % 2 == 1);
        assert_eq!(o[1], ones >= 2);
        assert_eq!(o[2], ones >= 1);
    }
    println!(
        "hazards: {} (multiphase staggering keeps T pulses separated)",
        out.hazards
    );
    assert_eq!(out.hazards, 0);

    // Counter-experiment: release all three operands at the SAME phase —
    // the behavioural model reports pulse-overlap hazards, the failure mode
    // the paper's flow is designed to prevent.
    let mut bad = T1Cell::new(500);
    bad.pulse_t(1000);
    bad.pulse_t(1010);
    bad.pulse_t(1020);
    println!(
        "\nwithout staggering: {} hazards on one epoch",
        bad.hazards()
    );
    assert!(bad.hazards() > 0);
}

fn main() {
    fig1b();
    fig1c();
}
