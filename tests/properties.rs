//! Property-based integration tests: universal invariants of the flow over
//! randomly generated networks.

use proptest::prelude::*;
use sfq_t1::circuits::random::{random_aig, RandomAigConfig};
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::to_pulse_circuit;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Mapping (with and without T1) preserves the Boolean function.
    #[test]
    fn flows_preserve_function(seed in 0u64..5000, xor_pct in 0u8..70) {
        let cfg = RandomAigConfig { num_pis: 6, num_gates: 48, num_pos: 4, xor_percent: xor_pct };
        let aig = random_aig(seed, &cfg);
        let lib = CellLibrary::default();
        for fc in [FlowConfig::single_phase(), FlowConfig::multiphase(4), FlowConfig::t1(4)] {
            let res = run_flow(&aig, &lib, &fc);
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for _ in 0..3 {
                let inputs: Vec<u64> = (0..aig.pi_count()).map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                }).collect();
                prop_assert_eq!(aig.eval64(&inputs), res.mapped.eval64(&inputs));
            }
        }
    }

    /// Every produced schedule satisfies all timing constraints.
    #[test]
    fn schedules_always_valid(seed in 0u64..5000, n in 3u32..8) {
        let cfg = RandomAigConfig { num_pis: 5, num_gates: 40, num_pos: 3, xor_percent: 40 };
        let aig = random_aig(seed, &cfg);
        let lib = CellLibrary::default();
        let res = run_flow(&aig, &lib, &FlowConfig::t1(n));
        prop_assert_eq!(res.schedule.validate(&res.mapped), Ok(()));
    }

    /// Pulse simulation of the scheduled netlist reproduces the AIG on
    /// streamed waves, without T1 hazards.
    #[test]
    fn pulse_sim_equivalence(seed in 0u64..2000) {
        let cfg = RandomAigConfig { num_pis: 5, num_gates: 32, num_pos: 3, xor_percent: 40 };
        let aig = random_aig(seed, &cfg);
        let lib = CellLibrary::default();
        let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
        let mut s = seed | 1;
        let vectors: Vec<Vec<bool>> = (0..3).map(|_| {
            (0..aig.pi_count()).map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                s & 1 == 1
            }).collect()
        }).collect();
        let out = pc.simulate(&vectors, 4).expect("valid schedule");
        prop_assert_eq!(out.hazards, 0);
        for (k, v) in vectors.iter().enumerate() {
            prop_assert_eq!(&out.outputs[k], &aig.eval(v));
        }
    }

    /// Multiphase clocking can only reduce DFFs relative to single-phase,
    /// and more phases never increase the count (same netlist, same engine).
    #[test]
    fn more_phases_fewer_dffs(seed in 0u64..2000) {
        let cfg = RandomAigConfig { num_pis: 6, num_gates: 40, num_pos: 3, xor_percent: 20 };
        let aig = random_aig(seed, &cfg);
        let lib = CellLibrary::default();
        let d1 = run_flow(&aig, &lib, &FlowConfig::single_phase()).stats.dffs;
        let d4 = run_flow(&aig, &lib, &FlowConfig::multiphase(4)).stats.dffs;
        let d8 = run_flow(&aig, &lib, &FlowConfig::multiphase(8)).stats.dffs;
        prop_assert!(d4 <= d1, "4 phases ({d4}) worse than 1 ({d1})");
        prop_assert!(d8 <= d4 + d4 / 8 + 1, "8 phases ({d8}) much worse than 4 ({d4})");
    }

    /// The T1 flow never breaks even when nothing matches: selecting zero
    /// groups must reproduce the baseline exactly.
    #[test]
    fn and_only_networks_unaffected_by_t1(seed in 0u64..2000) {
        let cfg = RandomAigConfig { num_pis: 6, num_gates: 30, num_pos: 3, xor_percent: 0 };
        let aig = random_aig(seed, &cfg);
        let lib = CellLibrary::default();
        let base = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
        let t1 = run_flow(&aig, &lib, &FlowConfig::t1(4));
        // AND-only networks can still contain MAJ structures; only compare
        // when nothing was used.
        if t1.stats.t1_used == 0 {
            prop_assert_eq!(t1.stats.area, base.stats.area);
            prop_assert_eq!(t1.stats.dffs, base.stats.dffs);
        }
    }
}
