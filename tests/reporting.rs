//! Reporting-layer integration tests: ratio columns, averages, CSV schema,
//! Verilog export consistency and the energy model on real flow results.

use sfq_t1::circuits::epfl;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::energy::EnergyModel;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::report::{TableOne, TableRow};
use sfq_t1::t1map::verilog::{cell_models, export, ExportOptions};

#[test]
fn ratios_are_consistent_with_stats() {
    let lib = CellLibrary::default();
    let row = TableRow::measure("adder10", &epfl::adder(10), &lib, 4);
    assert!((row.dff_ratio_1() - row.t1.dffs as f64 / row.single.dffs as f64).abs() < 1e-12);
    assert!((row.area_ratio_n() - row.t1.area as f64 / row.multi.area as f64).abs() < 1e-12);
    assert!(
        (row.depth_ratio_n() - row.t1.depth_cycles as f64 / row.multi.depth_cycles as f64).abs()
            < 1e-12
    );
}

#[test]
fn averages_are_means_of_rows() {
    let lib = CellLibrary::default();
    let mut t = TableOne::new();
    t.add("a", &epfl::adder(6), &lib, 4);
    t.add("b", &epfl::adder(10), &lib, 4);
    let avg = t.averages();
    let expect0 = (t.rows[0].dff_ratio_1() + t.rows[1].dff_ratio_1()) / 2.0;
    assert!((avg[0] - expect0).abs() < 1e-12);
    let expect3 = (t.rows[0].area_ratio_n() + t.rows[1].area_ratio_n()) / 2.0;
    assert!((avg[3] - expect3).abs() < 1e-12);
}

#[test]
fn csv_schema_is_stable() {
    let lib = CellLibrary::default();
    let mut t = TableOne::new();
    t.add("adder6", &epfl::adder(6), &lib, 4);
    let csv = t.to_csv();
    let header = csv.lines().next().expect("header");
    let fields: Vec<&str> = header.split(',').collect();
    assert_eq!(fields.len(), 18, "schema: {header}");
    let row = csv.lines().nth(1).expect("row");
    assert_eq!(row.split(',').count(), fields.len(), "row matches header");
}

#[test]
fn verilog_wire_counts_match_netlist() {
    let lib = CellLibrary::default();
    let res = run_flow(&epfl::adder(6), &lib, &FlowConfig::t1(4));
    let v = export(
        &res,
        &ExportOptions {
            module_name: "adder6".into(),
        },
    );
    let t1_instances = v.matches("sfq_t1 t1_").count();
    assert_eq!(t1_instances, res.mapped.t1_count());
    let gate_instances = v.matches("sfq_gate").count() - cell_models_gate_decls();
    // All instantiated gates come from the mapped netlist (arity 1..3).
    assert_eq!(gate_instances, res.mapped.gate_count());
    // Cell models are self-contained.
    assert!(cell_models().contains("module sfq_t1"));
}

fn cell_models_gate_decls() -> usize {
    0 // `export` emits instances only; declarations live in `cell_models()`.
}

#[test]
fn energy_scales_linearly_with_jj_count() {
    let m = EnergyModel::default();
    let r1 = m.report(100, 10.0, 1e9);
    let r2 = m.report(200, 10.0, 1e9);
    assert!((r2.static_power_w - 2.0 * r1.static_power_w).abs() < 1e-15);
    assert!(
        (r2.dynamic_power_w - r1.dynamic_power_w).abs() < 1e-18,
        "dynamic independent of JJs"
    );
}

#[test]
fn custom_library_changes_area_accounting() {
    let aig = epfl::adder(8);
    let mut lib = CellLibrary::default();
    let base = run_flow(&aig, &lib, &FlowConfig::multiphase(4)).stats.area;
    lib.dff *= 2;
    let heavier = run_flow(&aig, &lib, &FlowConfig::multiphase(4)).stats.area;
    assert!(heavier > base, "doubling DFF cost must increase area");
}
