//! Integration test: every benchmark generator, through every flow, is
//! verified wave-pipelined in the pulse-level simulator — functional
//! equivalence against the source AIG, zero T1 pulse-overlap hazards, and
//! DFF counts consistent with the insertion plan.

use sfq_t1::circuits::{epfl, iscas};
use sfq_t1::netlist::Aig;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::to_pulse_circuit;

fn random_vectors(width: usize, count: usize, mut seed: u64) -> Vec<Vec<bool>> {
    (0..count)
        .map(|_| {
            (0..width)
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed & 1 == 1
                })
                .collect()
        })
        .collect()
}

fn verify(name: &str, aig: &Aig, cfg: &FlowConfig, waves: usize) {
    let lib = CellLibrary::default();
    let res = run_flow(aig, &lib, cfg);
    res.schedule.validate(&res.mapped).expect("valid schedule");
    let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
    assert_eq!(
        pc.dff_count() as u64,
        res.plan.total_dffs,
        "{name}: plan/netlist DFF mismatch"
    );
    let vectors = random_vectors(aig.pi_count(), waves, 0x5EED ^ aig.and_count() as u64);
    let outcome = pc.simulate(&vectors, cfg.phases).expect("simulatable");
    assert_eq!(outcome.hazards, 0, "{name}: T1 pulse-overlap hazards");
    for (k, v) in vectors.iter().enumerate() {
        assert_eq!(outcome.outputs[k], aig.eval(v), "{name}: wave {k} mismatch");
    }
}

#[test]
fn adder_all_flows() {
    let aig = epfl::adder(8);
    verify("adder-1p", &aig, &FlowConfig::single_phase(), 5);
    verify("adder-4p", &aig, &FlowConfig::multiphase(4), 5);
    verify("adder-t1", &aig, &FlowConfig::t1(4), 5);
}

#[test]
fn multiplier_t1_flow() {
    verify("mult-t1", &epfl::multiplier(6), &FlowConfig::t1(4), 4);
}

#[test]
fn square_t1_flow() {
    verify("square-t1", &epfl::square(6), &FlowConfig::t1(4), 4);
}

#[test]
fn voter_t1_flow() {
    verify("voter-t1", &epfl::voter(15), &FlowConfig::t1(4), 4);
}

#[test]
fn sin_t1_flow() {
    verify("sin-t1", &epfl::sin(8), &FlowConfig::t1(4), 3);
}

#[test]
fn log2_t1_flow() {
    verify("log2-t1", &epfl::log2(12), &FlowConfig::t1(4), 3);
}

#[test]
fn c7552_like_flows() {
    let aig = iscas::c7552_like();
    verify("c7552-4p", &aig, &FlowConfig::multiphase(4), 3);
    verify("c7552-t1", &aig, &FlowConfig::t1(4), 3);
}

#[test]
fn six_phase_clocking() {
    verify("adder-6p-t1", &epfl::adder(8), &FlowConfig::t1(6), 4);
}

#[test]
fn three_phase_minimum_for_t1() {
    verify("adder-3p-t1", &epfl::adder(6), &FlowConfig::t1(3), 4);
}
