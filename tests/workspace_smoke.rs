//! Workspace smoke test: the README / `lib.rs` quickstart path must keep
//! working exactly as documented — `epfl::adder(16)` through [`run_flow`],
//! baseline multiphase vs the T1 flow, with the T1 flow winning on area.

use sfq_t1::circuits::epfl;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};

#[test]
fn quickstart_t1_beats_baseline_on_adder16() {
    let aig = epfl::adder(16);
    let lib = CellLibrary::default();

    let baseline = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
    let proposed = run_flow(&aig, &lib, &FlowConfig::t1(4));

    // The documented claim: T1 mapping wins on adders.
    assert!(
        proposed.stats.area < baseline.stats.area,
        "T1 flow area {} must beat baseline area {} on adder(16)",
        proposed.stats.area,
        baseline.stats.area
    );

    // The T1 flow actually used T1 cells to get there.
    assert!(
        proposed.stats.t1_used > 0,
        "T1 flow selected no T1 cells on an adder"
    );

    // Both flows preserve the Boolean function of the source AIG.
    let inputs: Vec<u64> = (0..aig.pi_count() as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let want = aig.eval64(&inputs);
    assert_eq!(
        want,
        baseline.mapped.eval64(&inputs),
        "baseline flow changed the function"
    );
    assert_eq!(
        want,
        proposed.mapped.eval64(&inputs),
        "T1 flow changed the function"
    );

    // Schedules of both flows satisfy their timing constraints.
    assert_eq!(baseline.schedule.validate(&baseline.mapped), Ok(()));
    assert_eq!(proposed.schedule.validate(&proposed.mapped), Ok(()));
}
