//! Integration test of the `sfq-t1` command-line tool: generate → map →
//! verify → export, through real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sfq-t1"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sfq_t1_cli_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_map_verify_roundtrip() {
    let aag = tmp("adder.aag");
    let out = bin()
        .args(["gen", "adder", "8", "-o", aag.to_str().unwrap()])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["verify", aag.to_str().unwrap(), "--waves", "4"])
        .output()
        .expect("run verify");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "verify failed: {stdout}");
    assert!(stdout.contains("verified: 4 waves"), "{stdout}");
    assert!(stdout.contains("0 hazards"), "{stdout}");
    let _ = std::fs::remove_file(&aag);
}

#[test]
fn binary_aiger_and_verilog_export() {
    let aig = tmp("mult.aig");
    let v = tmp("mult.v");
    let models = tmp("models.v");
    let out = bin()
        .args(["gen", "c6288", "-o", aig.to_str().unwrap()])
        .output()
        .expect("run gen");
    assert!(out.status.success());

    let out = bin()
        .args([
            "map",
            aig.to_str().unwrap(),
            "--verilog",
            v.to_str().unwrap(),
            "--models",
            models.to_str().unwrap(),
        ])
        .output()
        .expect("run map");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let verilog = std::fs::read_to_string(&v).expect("verilog written");
    assert!(verilog.contains("module sfq_top"));
    assert!(verilog.contains("sfq_t1 "));
    let m = std::fs::read_to_string(&models).expect("models written");
    assert!(m.contains("module sfq_t1"));
    for f in [&aig, &v, &models] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn baseline_flow_flag() {
    let aag = tmp("voter.aag");
    assert!(bin()
        .args(["gen", "voter", "15", "-o", aag.to_str().unwrap()])
        .status()
        .expect("gen")
        .success());
    let out = bin()
        .args(["map", aag.to_str().unwrap(), "--no-t1", "--phases", "2"])
        .output()
        .expect("map");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("0 T1 cells"), "{stdout}");
    let _ = std::fs::remove_file(&aag);
}

#[test]
fn suite_subcommand_matches_serial_run() {
    // Parallel and serial runs must produce byte-identical CSVs (the
    // engine orders results by submission, not completion).
    let csv1 = tmp("suite1.csv");
    let csv2 = tmp("suite2.csv");
    for (jobs, csv) in [("1", &csv1), ("4", &csv2)] {
        let out = bin()
            .args([
                "suite",
                "--small",
                "--jobs",
                jobs,
                "--csv",
                csv.to_str().unwrap(),
            ])
            .output()
            .expect("run suite");
        assert!(
            out.status.success(),
            "suite --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("Average"), "{stdout}");
    }
    let a = std::fs::read(&csv1).expect("serial CSV written");
    let b = std::fs::read(&csv2).expect("parallel CSV written");
    assert_eq!(a, b, "serial and parallel CSVs are byte-identical");
    assert!(a.starts_with(b"benchmark,"));
    for f in [&csv1, &csv2] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn suite_flag_errors() {
    // A bare --csv must be a hard error, not a silently dropped CSV.
    let out = bin()
        .args(["suite", "--small", "--csv"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--csv requires a file path"));
    // Garbage --jobs is rejected.
    let out = bin()
        .args(["suite", "--small", "--jobs", "zero"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn errors_are_reported() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    // Missing file.
    let out = bin()
        .args(["map", "/nonexistent.aag"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    // T1 with too few phases.
    let aag = tmp("tiny.aag");
    assert!(bin()
        .args(["gen", "adder", "2", "-o", aag.to_str().unwrap()])
        .status()
        .expect("gen")
        .success());
    let out = bin()
        .args(["map", aag.to_str().unwrap(), "--phases", "2"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least 3 phases"));
    let _ = std::fs::remove_file(&aag);
}

#[test]
fn unknown_benchmark_hard_errors_with_known_names() {
    // Satellite: a typo'd benchmark name must fail loudly and teach the
    // full list of known names — in `gen`…
    let out = bin().args(["gen", "adderr"]).output().expect("run gen");
    assert!(!out.status.success(), "unknown benchmark must be an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark 'adderr'"), "{stderr}");
    for name in [
        "adder",
        "multiplier",
        "square",
        "sin",
        "log2",
        "voter",
        "c6288",
        "c7552",
    ] {
        assert!(stderr.contains(name), "error must list '{name}': {stderr}");
    }
    // …and in `opt`, where a non-benchmark string is also not a file.
    let out = bin().args(["opt", "bogus9"]).output().expect("run opt");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("known benchmark") && stderr.contains("voter"),
        "{stderr}"
    );
}

#[test]
fn opt_subcommand_fixpoint_verify() {
    let out = bin()
        .args(["opt", "adder", "8", "--fixpoint", "--verify"])
        .output()
        .expect("run opt");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "opt failed: {stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("verified equivalent"), "{stdout}");
    assert!(stdout.contains("rewrite"), "per-pass stats table: {stdout}");
    // The total line reports a strict node reduction on the adder: parse
    // the before/after counts out of "total: <b> -> <a> nodes (...)".
    let total = stdout
        .lines()
        .find(|l| l.starts_with("total:"))
        .expect("total line");
    let counts: Vec<usize> = total
        .split_whitespace()
        .take_while(|w| !w.starts_with("nodes"))
        .filter_map(|w| w.parse().ok())
        .collect();
    assert_eq!(counts.len(), 2, "before/after counts: {total}");
    assert!(counts[1] < counts[0], "adder must shrink: {total}");
}

#[test]
fn opt_subcommand_on_files_and_pass_selection() {
    let aag = tmp("opt_in.aag");
    let optimized = tmp("opt_out.aag");
    assert!(bin()
        .args(["gen", "adder", "6", "-o", aag.to_str().unwrap()])
        .status()
        .expect("gen")
        .success());
    let out = bin()
        .args([
            "opt",
            aag.to_str().unwrap(),
            "--passes",
            "strash,sweep",
            "--verify",
            "-o",
            optimized.to_str().unwrap(),
        ])
        .output()
        .expect("run opt");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reread = std::fs::read_to_string(&optimized).expect("optimized AIGER written");
    assert!(reread.starts_with("aag"), "{reread}");
    // Unknown pass names are hard errors listing every known pass,
    // including the slack-aware variants.
    let out = bin()
        .args(["opt", "adder", "4", "--passes", "frobnicate"])
        .output()
        .expect("run opt");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown pass 'frobnicate'"), "{stderr}");
    for name in [
        "strash",
        "sweep",
        "rewrite",
        "rewrite-slack",
        "balance",
        "balance-slack",
    ] {
        assert!(stderr.contains(name), "error must list '{name}': {stderr}");
    }
    for f in [&aag, &optimized] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn opt_slack_aware_flag_runs_verified() {
    let out = bin()
        .args([
            "opt",
            "adder",
            "8",
            "--fixpoint",
            "--slack-aware",
            "--verify",
        ])
        .output()
        .expect("run opt");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "opt --slack-aware failed: {stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("rewrite-slack"), "{stdout}");
    assert!(stdout.contains("verified equivalent"), "{stdout}");
}

#[test]
fn sta_subcommand_reports_unit_delay_timing() {
    let csv = tmp("sta.csv");
    let out = bin()
        .args([
            "sta",
            "adder",
            "8",
            "--top-paths",
            "2",
            "--csv",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("run sta");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "sta failed: {stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("worst slack 0"), "{stdout}");
    assert!(stdout.contains("slack histogram:"), "{stdout}");
    assert!(
        stdout.contains("path #1") && stdout.contains("path #2"),
        "{stdout}"
    );
    let table = std::fs::read_to_string(&csv).expect("CSV written");
    assert!(
        table.starts_with("node,arrival,required,slack\n"),
        "{table}"
    );
    assert!(table.lines().count() > 10, "{table}");
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn sta_subcommand_mapped_mode() {
    let out = bin()
        .args(["sta", "adder", "8", "--mapped", "--phases", "4"])
        .output()
        .expect("run sta --mapped");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("mapped timing (n = 4 phases)"), "{stdout}");
    assert!(stdout.contains("schedule slack: worst 0"), "{stdout}");
    assert!(stdout.contains("per-edge"), "{stdout}");
    // Unknown subjects fail loudly, as everywhere else.
    let out = bin().args(["sta", "nonesuch"]).output().expect("run sta");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("known benchmark"));
}

#[test]
fn suite_cache_dir_warm_start_computes_nothing() {
    // A second run over a populated store must hit 100% on disk (zero
    // flow computations) and still emit a byte-identical CSV.
    let dir = tmp("suite_store");
    let _ = std::fs::remove_dir_all(&dir);
    let cold_csv = tmp("cold.csv");
    let warm_csv = tmp("warm.csv");
    let mut stdouts = Vec::new();
    for csv in [&cold_csv, &warm_csv] {
        let out = bin()
            .args([
                "suite",
                "--small",
                "--cache-dir",
                dir.to_str().unwrap(),
                "--csv",
                csv.to_str().unwrap(),
            ])
            .output()
            .expect("run suite");
        assert!(
            out.status.success(),
            "suite --cache-dir failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        stdouts.push(String::from_utf8_lossy(&out.stdout).into_owned());
    }
    assert!(stdouts[0].contains("store: "), "{}", stdouts[0]);
    let warm = stdouts[1]
        .lines()
        .find(|l| l.starts_with("store: "))
        .expect("warm store summary");
    assert!(warm.contains(" 0 flow runs"), "warm run computed: {warm}");
    assert!(
        !warm.contains("0 disk hits"),
        "warm run must hit disk: {warm}"
    );
    let a = std::fs::read(&cold_csv).expect("cold CSV written");
    let b = std::fs::read(&warm_csv).expect("warm CSV written");
    assert_eq!(a, b, "cold and warm CSVs are byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
    for f in [&cold_csv, &warm_csv] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn serve_streams_one_result_line_per_job() {
    use std::io::Write;
    let mut child = bin()
        .args(["serve", "--jobs", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(
            b"# warm-up batch\n\
              adder:4 1phi\n\
              adder:4 t1 4\n\
              ---\n\
              square:4 nphi 4\n\
              bogus t1\n",
        )
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let done: Vec<&str> = stdout.lines().filter(|l| l.starts_with("done ")).collect();
    assert_eq!(done.len(), 3, "one result line per job: {stdout}");
    // Indices are assigned in submission order, across batches.
    assert!(done.iter().any(|l| l.starts_with("done 0 adder:4/1phi ")));
    assert!(done.iter().any(|l| l.starts_with("done 1 adder:4/t1 ")));
    assert!(done.iter().any(|l| l.starts_with("done 2 square:4/nphi ")));
    for l in &done {
        assert!(l.contains(" source=computed "), "fresh store: {l}");
        assert!(l.contains(" micros="), "wall-clock per job: {l}");
        assert!(l.contains(" dffs=") && l.contains(" area="), "{l}");
    }
    // The malformed request gets an err line with its index, not a crash.
    assert!(
        stdout.lines().any(|l| l.starts_with("err 3 ")),
        "bad request reported: {stdout}"
    );
}

#[test]
fn serve_with_cache_dir_reports_sources() {
    use std::io::Write;
    let dir = tmp("serve_store");
    let _ = std::fs::remove_dir_all(&dir);
    let run = |requests: &[u8]| -> String {
        let mut child = bin()
            .args(["serve", "--cache-dir", dir.to_str().unwrap()])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn serve");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(requests)
            .expect("write requests");
        let out = child.wait_with_output().expect("serve exits");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Same job twice in one batch: computed once, memory hit once.
    let first = run(b"adder:4 t1 4\nadder:4 t1 4\n");
    assert_eq!(first.matches("source=computed").count(), 1, "{first}");
    assert_eq!(first.matches("source=memory").count(), 1, "{first}");
    // A later process over the same directory serves from disk.
    let second = run(b"adder:4 t1 4\n");
    assert!(second.contains("source=disk"), "{second}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_trace_is_a_pure_observer_and_valid_chrome_json() {
    // Tracing must never perturb results: the CSV from a traced run is
    // byte-identical to an untraced one. And the trace file itself must be
    // well-formed Chrome-trace JSON with spans from every layer.
    let traced_csv = tmp("traced.csv");
    let plain_csv = tmp("plain.csv");
    let trace = tmp("trace.json");
    let out = bin()
        .args([
            "suite",
            "--small",
            "--trace",
            trace.to_str().unwrap(),
            "--csv",
            traced_csv.to_str().unwrap(),
        ])
        .output()
        .expect("run traced suite");
    assert!(
        out.status.success(),
        "traced suite failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["suite", "--small", "--csv", plain_csv.to_str().unwrap()])
        .output()
        .expect("run untraced suite");
    assert!(out.status.success());
    let a = std::fs::read(&traced_csv).expect("traced CSV written");
    let b = std::fs::read(&plain_csv).expect("plain CSV written");
    assert_eq!(a, b, "tracing changed the results");

    let text = std::fs::read_to_string(&trace).expect("trace written");
    let doc = sfq_t1::obs::json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    // One span from each instrumented layer: core flow stages, the STA
    // subsystem, and the engine's per-job accounting.
    for required in [
        "flow:run",
        "flow:map",
        "flow:phase-assign",
        "flow:dff-insert",
        "sta:build",
        "engine:job",
        "engine:queue-wait",
    ] {
        assert!(
            names.contains(&required),
            "trace must contain span '{required}': {names:?}"
        );
    }
    for f in [&traced_csv, &plain_csv, &trace] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn bench_report_emit_and_check_roundtrip() {
    // `bench-report` writes a schema-versioned perf report, and its
    // `--check` mode accepts exactly what it emits.
    let json = tmp("bench_report.json");
    let out = bin()
        .args(["bench-report", "--small", "-o", json.to_str().unwrap()])
        .output()
        .expect("run bench-report");
    assert!(
        out.status.success(),
        "bench-report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json).expect("report written");
    let doc = sfq_t1::obs::json::parse(&text).expect("report is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("sfq-t1/bench-report")
    );
    assert_eq!(doc.get("schema_version").and_then(|v| v.as_u64()), Some(2));
    // v2 reports carry the memory block and latency histograms.
    assert!(doc.get("memory").is_some(), "memory block: {text}");
    assert!(doc.get("histograms").is_some(), "histograms: {text}");
    assert!(text.contains("\"alloc_bytes\""), "{text}");
    assert!(text.contains("\"peak_bytes\""), "{text}");

    let out = bin()
        .args(["bench-report", "--check", json.to_str().unwrap()])
        .output()
        .expect("run bench-report --check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "--check rejected own output: {stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("valid bench report"), "{stdout}");
    // A non-report file is rejected loudly.
    let bogus = tmp("bogus.json");
    std::fs::write(&bogus, "{\"schema\":\"nope\"}").unwrap();
    let out = bin()
        .args(["bench-report", "--check", bogus.to_str().unwrap()])
        .output()
        .expect("run bench-report --check bogus");
    assert!(!out.status.success(), "bogus report must fail --check");
    for f in [&json, &bogus] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn bench_report_diff_self_clean_and_injected_slowdown_fails() {
    // The regression sentinel end-to-end: a report diffed against itself
    // exits zero; doubling one job's wall time makes the diff exit
    // nonzero and name exactly that job.
    let base = tmp("diff_base.json");
    let out = bin()
        .args(["bench-report", "--small", "-o", base.to_str().unwrap()])
        .output()
        .expect("run bench-report");
    assert!(
        out.status.success(),
        "bench-report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "bench-report",
            "diff",
            base.to_str().unwrap(),
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run self-diff");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "self-diff must exit zero: {stdout}");
    assert!(stdout.contains("OK: no regressions"), "{stdout}");

    // Inject a 10x slowdown into exactly one job (adder/T1). Entries are
    // emitted one per line, so the edit can be scoped to that line.
    let text = std::fs::read_to_string(&base).expect("report written");
    let slowed: String = text
        .lines()
        .map(|l| {
            if l.contains("\"benchmark\": \"adder\"") && l.contains("\"flow\": \"T1\"") {
                let start = l.find("\"micros\": ").expect("micros field") + "\"micros\": ".len();
                let end = start + l[start..].find(',').expect("comma after micros");
                let micros: u64 = l[start..end].trim().parse().expect("micros value");
                format!("{}{}{}", &l[..start], micros * 10, &l[end..])
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let cur = tmp("diff_slow.json");
    std::fs::write(&cur, slowed).expect("write slowed report");

    let out = bin()
        .args([
            "bench-report",
            "diff",
            base.to_str().unwrap(),
            cur.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("run slowdown diff");
    assert!(!out.status.success(), "regression must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("adder/T1"), "names the job: {stderr}");
    let doc = sfq_t1::obs::json::parse(&stdout).expect("verdict is valid JSON");
    assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(doc.get("regressed").and_then(|v| v.as_u64()), Some(1));
    // A generous allowance lets the same pair pass.
    let out = bin()
        .args([
            "bench-report",
            "diff",
            base.to_str().unwrap(),
            cur.to_str().unwrap(),
            "--max-regress-pct",
            "10000",
        ])
        .output()
        .expect("run lenient diff");
    assert!(
        out.status.success(),
        "lenient diff must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [&base, &cur] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn serve_stats_line_snapshots_counters_and_done_lines_carry_alloc() {
    use std::io::Write;
    let mut child = bin()
        .args(["serve"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"adder:4 1phi\n---\nstats\nadder:4 1phi\n---\nstats\n")
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stats: Vec<&str> = stdout.lines().filter(|l| l.starts_with("stats ")).collect();
    assert_eq!(stats.len(), 2, "one snapshot per stats line: {stdout}");
    for l in &stats {
        for field in [
            "memory_hits=",
            "disk_hits=",
            "misses=",
            "live_bytes=",
            "peak_bytes=",
            "p50_compute_us=",
            "p99_compute_us=",
        ] {
            assert!(l.contains(field), "stats line carries {field}: {l}");
        }
    }
    // The second snapshot has seen both jobs (same job resubmitted, so
    // one miss plus one memory hit).
    assert!(stats[0].contains("misses=1"), "{}", stats[0]);
    assert!(stats[1].contains("memory_hits=1"), "{}", stats[1]);
    // Result lines now report per-job allocation.
    for l in stdout.lines().filter(|l| l.starts_with("done ")) {
        assert!(l.contains(" alloc_bytes="), "{l}");
        assert!(l.contains(" peak_bytes="), "{l}");
    }
}

#[test]
fn opt_and_sta_emit_trace_and_bench_json() {
    // The single-tool subcommands share the suite's observability flags:
    // `--trace` writes Chrome JSON, `--bench-json` a valid v2 report.
    let trace = tmp("opt_trace.json");
    let opt_json = tmp("opt_bench.json");
    let sta_json = tmp("sta_bench.json");
    let out = bin()
        .args([
            "opt",
            "adder",
            "8",
            "--trace",
            trace.to_str().unwrap(),
            "--bench-json",
            opt_json.to_str().unwrap(),
        ])
        .output()
        .expect("run opt");
    assert!(
        out.status.success(),
        "opt failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let doc = sfq_t1::obs::json::parse(&text).expect("trace is valid JSON");
    assert!(doc.get("traceEvents").and_then(|v| v.as_arr()).is_some());

    let out = bin()
        .args([
            "sta",
            "adder",
            "8",
            "--bench-json",
            sta_json.to_str().unwrap(),
        ])
        .output()
        .expect("run sta");
    assert!(
        out.status.success(),
        "sta failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for report in [&opt_json, &sta_json] {
        let out = bin()
            .args(["bench-report", "--check", report.to_str().unwrap()])
            .output()
            .expect("run --check");
        assert!(
            out.status.success(),
            "{} must validate: {}",
            report.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(report).expect("report written");
        let doc = sfq_t1::obs::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(2),
            "{text}"
        );
    }
    for f in [&trace, &opt_json, &sta_json] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn map_accepts_pre_opt_flag() {
    let aag = tmp("preopt.aag");
    assert!(bin()
        .args(["gen", "adder", "8", "-o", aag.to_str().unwrap()])
        .status()
        .expect("gen")
        .success());
    let out = bin()
        .args(["map", aag.to_str().unwrap(), "--pre-opt"])
        .output()
        .expect("map");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&aag);
}

#[test]
fn explore_cold_warm_cache_dir_roundtrip() {
    // The exploration autopilot end-to-end: a cold run writes a validated
    // EXPLORE report; a warm rerun over the same store performs zero flow
    // computations and reproduces the report modulo provenance fields.
    let spec = tmp("explore.sweep");
    std::fs::write(
        &spec,
        "# tiny grid for the CLI test\n\
         sweep clitest\n\
         benchmarks adder:4\n\
         flows 1phi t1\n\
         phases 3 4\n",
    )
    .expect("write spec");
    let dir = tmp("explore_store");
    let _ = std::fs::remove_dir_all(&dir);
    let cold_json = tmp("explore_cold.json");
    let warm_json = tmp("explore_warm.json");
    let mut stdouts = Vec::new();
    for out_file in [&cold_json, &warm_json] {
        let out = bin()
            .args([
                "explore",
                spec.to_str().unwrap(),
                "--cache-dir",
                dir.to_str().unwrap(),
                "-o",
                out_file.to_str().unwrap(),
            ])
            .output()
            .expect("run explore");
        assert!(
            out.status.success(),
            "explore failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        stdouts.push(String::from_utf8_lossy(&out.stdout).into_owned());
    }
    // Cold: header, frontier table, summary with dedup-aware totals
    // (1phi collapses across the phases axis: 4 points, 3 unique jobs).
    assert!(stdouts[0].contains("explore 'clitest'"), "{}", stdouts[0]);
    assert!(stdouts[0].contains("adder:4: frontier"), "{}", stdouts[0]);
    assert!(
        stdouts[0].contains("explore: 4 points, 3 unique jobs"),
        "{}",
        stdouts[0]
    );
    // Warm: everything from disk, zero flow computations.
    assert!(stdouts[1].contains(" 0 flow runs"), "{}", stdouts[1]);
    let cold = std::fs::read_to_string(&cold_json).expect("cold report written");
    let warm = std::fs::read_to_string(&warm_json).expect("warm report written");
    sfq_t1::explore::validate(&cold).expect("cold report validates");
    sfq_t1::explore::validate(&warm).expect("warm report validates");
    assert!(cold.contains("\"schema\": \"sfq-t1/explore\""), "{cold}");
    assert_eq!(
        sfq_t1::explore::report::strip_provenance(&cold),
        sfq_t1::explore::report::strip_provenance(&warm),
        "reports are byte-identical modulo source-tier fields"
    );
    let _ = std::fs::remove_dir_all(&dir);
    for f in [&spec, &cold_json, &warm_json] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn explore_spec_errors_name_the_line_and_legal_tokens() {
    // A bad axis value is a hard error naming the spec file, the line,
    // and the full legal vocabulary.
    let spec = tmp("explore_bad.sweep");
    std::fs::write(&spec, "benchmarks adder:4\nflows 1phi warp\n").expect("write spec");
    let out = bin()
        .args(["explore", spec.to_str().unwrap()])
        .output()
        .expect("run explore");
    assert!(!out.status.success(), "bad spec must be an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(stderr.contains("unknown flow 'warp'"), "{stderr}");
    for token in ["1phi", "nphi", "t1"] {
        assert!(
            stderr.contains(token),
            "error must list '{token}': {stderr}"
        );
    }
    // An unknown key lists every legal key.
    std::fs::write(&spec, "benchmarks adder:4\nfrobnicate yes\n").expect("write spec");
    let out = bin()
        .args(["explore", spec.to_str().unwrap()])
        .output()
        .expect("run explore");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown key 'frobnicate'"), "{stderr}");
    for key in [
        "sweep",
        "benchmarks",
        "flows",
        "phases",
        "opt",
        "timing",
        "library",
        "objectives",
    ] {
        assert!(stderr.contains(key), "error must list '{key}': {stderr}");
    }
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn store_gc_subcommand_evicts_and_reports() {
    // Populate a store, then shrink it with the gc verb.
    let dir = tmp("gc_store");
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args(["suite", "--small", "--cache-dir", dir.to_str().unwrap()])
        .output()
        .expect("run suite");
    assert!(
        out.status.success(),
        "suite failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["store", "gc", dir.to_str().unwrap(), "--keep-newest", "2"])
        .output()
        .expect("run store gc");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "store gc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("store gc: evicted"), "{stdout}");
    assert!(stdout.contains("2 entries"), "keeps 2 newest: {stdout}");
    // Idempotent: a second pass has nothing left to evict.
    let out = bin()
        .args(["store", "gc", dir.to_str().unwrap(), "--keep-newest", "2"])
        .output()
        .expect("run store gc again");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("evicted 0 entries"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // Missing --keep-newest and unknown verbs are hard errors.
    let out = bin()
        .args(["store", "gc", dir.to_str().unwrap()])
        .output()
        .expect("run store gc bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--keep-newest"));
    let out = bin().args(["store", "prune"]).output().expect("run store");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown verb 'prune'"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_shares_the_explore_config_vocabulary() {
    use std::io::Write;
    // Serve requests accept the explore spec's config tokens uniformly,
    // and an unknown token's error teaches the full list — all six.
    let mut child = bin()
        .args(["serve"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"adder:4 t1 4 slack-opt no-timing\nadder:4 t1 4 warp\n")
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("done 0 adder:4/t1 ")),
        "valid config tokens serve: {stdout}"
    );
    let err = stdout
        .lines()
        .find(|l| l.starts_with("err 1 "))
        .expect("bad token reported");
    assert!(err.contains("unknown option 'warp'"), "{err}");
    for token in [
        "none",
        "pre-opt",
        "slack-opt",
        "dff-opt",
        "timing",
        "no-timing",
    ] {
        assert!(err.contains(token), "error must list '{token}': {err}");
    }
}

#[test]
fn gen_random_then_opt_hashes_match_across_strategies() {
    let aag = tmp("scale.aag");
    let out = bin()
        .args([
            "gen",
            "random",
            "--nodes",
            "3000",
            "--seed",
            "9",
            "-o",
            aag.to_str().unwrap(),
        ])
        .output()
        .expect("run gen random");
    assert!(
        out.status.success(),
        "gen random failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Deterministic in (--nodes, --seed): a second generation is identical.
    let aag2 = tmp("scale2.aag");
    let out = bin()
        .args([
            "gen",
            "random",
            "--nodes",
            "3000",
            "--seed",
            "9",
            "-o",
            aag2.to_str().unwrap(),
        ])
        .output()
        .expect("rerun gen random");
    assert!(out.status.success());
    assert_eq!(
        std::fs::read(&aag).unwrap(),
        std::fs::read(&aag2).unwrap(),
        "gen random must be deterministic in its seed"
    );

    // The in-place default and the --rebuild-passes strategy must print
    // the same structural hash under --stats (byte-identical networks).
    let hash_of = |extra: &[&str]| {
        let mut args = vec!["opt", aag.to_str().unwrap(), "--fixpoint", "--stats"];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().expect("run opt");
        assert!(
            out.status.success(),
            "opt failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("structural hash:"))
            .expect("--stats prints the structural hash")
            .to_string()
    };
    assert_eq!(hash_of(&[]), hash_of(&["--rebuild-passes"]));

    // A missing --nodes is a hard error naming the requirement.
    let out = bin().args(["gen", "random"]).output().expect("run");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--nodes"),
        "error must name --nodes"
    );
    let _ = std::fs::remove_file(&aag);
    let _ = std::fs::remove_file(&aag2);
}
