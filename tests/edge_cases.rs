//! Degenerate-input robustness: the flow must handle networks with no
//! logic, constant outputs, pass-through outputs and duplicated outputs
//! without panicking, and the simulation bridge must agree.

use sfq_t1::netlist::{Aig, Lit};
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::to_pulse_circuit;

fn check(aig: &Aig, cfg: &FlowConfig, vectors: Vec<Vec<bool>>) {
    let lib = CellLibrary::default();
    let res = run_flow(aig, &lib, cfg);
    res.schedule.validate(&res.mapped).expect("valid schedule");
    for v in &vectors {
        assert_eq!(aig.eval(v), res.mapped.eval(v), "combinational equivalence");
    }
    let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
    let outcome = pc.simulate(&vectors, cfg.phases).expect("simulatable");
    for (k, v) in vectors.iter().enumerate() {
        assert_eq!(
            outcome.outputs[k],
            aig.eval(v),
            "pulse-sim equivalence wave {k}"
        );
    }
}

#[test]
fn passthrough_output() {
    let mut g = Aig::new();
    let a = g.add_pi();
    g.add_po(a);
    check(
        &g,
        &FlowConfig::multiphase(4),
        vec![vec![true], vec![false]],
    );
    check(
        &g,
        &FlowConfig::single_phase(),
        vec![vec![true], vec![false]],
    );
}

#[test]
fn inverted_passthrough_output() {
    let mut g = Aig::new();
    let a = g.add_pi();
    g.add_po(!a);
    check(&g, &FlowConfig::t1(4), vec![vec![true], vec![false]]);
}

#[test]
fn constant_outputs_only() {
    let mut g = Aig::new();
    let _a = g.add_pi();
    g.add_po(Lit::FALSE);
    g.add_po(Lit::TRUE);
    check(
        &g,
        &FlowConfig::multiphase(4),
        vec![vec![true], vec![false]],
    );
}

#[test]
fn duplicated_output() {
    let mut g = Aig::new();
    let a = g.add_pi();
    let b = g.add_pi();
    let x = g.and(a, b);
    g.add_po(x);
    g.add_po(x);
    g.add_po(!x);
    check(
        &g,
        &FlowConfig::multiphase(4),
        (0..4u32)
            .map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1])
            .collect(),
    );
}

#[test]
fn single_gate_each_flow() {
    let mut g = Aig::new();
    let a = g.add_pi();
    let b = g.add_pi();
    let x = g.xor(a, b);
    g.add_po(x);
    let vectors: Vec<Vec<bool>> = (0..4u32)
        .map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1])
        .collect();
    check(&g, &FlowConfig::single_phase(), vectors.clone());
    check(&g, &FlowConfig::multiphase(4), vectors.clone());
    check(&g, &FlowConfig::t1(4), vectors);
}

#[test]
fn mixed_constant_and_logic_outputs() {
    let mut g = Aig::new();
    let a = g.add_pi();
    let b = g.add_pi();
    let c = g.add_pi();
    let s = g.xor3(a, b, c);
    let m = g.maj3(a, b, c);
    g.add_po(Lit::TRUE);
    g.add_po(s);
    g.add_po(Lit::FALSE);
    g.add_po(m);
    g.add_po(a);
    let vectors: Vec<Vec<bool>> = (0..8u32)
        .map(|i| (0..3).map(|k| (i >> k) & 1 == 1).collect())
        .collect();
    check(&g, &FlowConfig::t1(4), vectors);
}

#[test]
fn deep_chain_single_phase() {
    // A 40-deep AND chain under 1φ: large exact balancing, still correct.
    let mut g = Aig::new();
    let a = g.add_pi();
    let b = g.add_pi();
    let mut acc = g.and(a, b);
    for _ in 0..39 {
        acc = g.and(acc, a);
    }
    g.add_po(acc);
    check(
        &g,
        &FlowConfig::single_phase(),
        vec![vec![true, true], vec![true, false], vec![false, true]],
    );
}

#[test]
fn wide_fanout_shared_chains() {
    // One driver fanning out to many consumers at staggered depths.
    let mut g = Aig::new();
    let a = g.add_pi();
    let b = g.add_pi();
    let hub = g.and(a, b);
    let mut tail = hub;
    let mut taps = Vec::new();
    for _ in 0..10 {
        tail = g.and(tail, hub);
        taps.push(tail);
    }
    for t in taps {
        g.add_po(t);
    }
    check(
        &g,
        &FlowConfig::multiphase(4),
        vec![vec![true, true], vec![false, true]],
    );
}
