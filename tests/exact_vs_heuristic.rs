//! Integration test: cross-validation of the scalable engines against exact
//! ones — the phase-assignment heuristic vs the MILP (the paper's ILP of
//! §II-B), the greedy DFF-chain builder vs exhaustive search, and the T1
//! staggering construction vs a CP model of eq. (5).

use sfq_t1::circuits::epfl;
use sfq_t1::circuits::random::{random_aig, RandomAigConfig};
use sfq_t1::solver::cp::CpModel;
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::dff::{build_chain, insert_dffs, Requirement};
use sfq_t1::t1map::flow::{run_flow, FlowConfig};
use sfq_t1::t1map::mapped::MappedCell;
use sfq_t1::t1map::mapper::map;
use sfq_t1::t1map::phase::{assign_phases, assign_phases_exact, edge_dff_objective};

#[test]
fn heuristic_matches_milp_on_small_adders() {
    let lib = CellLibrary::default();
    for bits in [2usize, 3, 4] {
        let aig = epfl::adder(bits);
        let mc = map(&aig, &lib, None).circuit;
        for n in [1u32, 2, 4] {
            let h = assign_phases(&mc, n, 3);
            let e = assign_phases_exact(&mc, n).expect("exact solvable");
            let ho = edge_dff_objective(&mc, &h);
            let eo = edge_dff_objective(&mc, &e);
            assert!(
                eo <= ho,
                "exact must be optimal: {eo} vs {ho} ({bits} bits, n={n})"
            );
            assert!(
                ho <= eo + eo / 4 + 2,
                "heuristic within 25%+2 of optimum: {ho} vs {eo} ({bits} bits, n={n})"
            );
        }
    }
}

#[test]
fn heuristic_matches_milp_on_random_networks() {
    let lib = CellLibrary::default();
    for seed in 0..6 {
        let cfg = RandomAigConfig {
            num_pis: 5,
            num_gates: 14,
            num_pos: 3,
            xor_percent: 30,
        };
        let aig = random_aig(seed, &cfg);
        let mc = map(&aig, &lib, None).circuit;
        for n in [1u32, 4] {
            let h = assign_phases(&mc, n, 3);
            let Ok(e) = assign_phases_exact(&mc, n) else {
                continue;
            };
            let ho = edge_dff_objective(&mc, &h);
            let eo = edge_dff_objective(&mc, &e);
            assert!(eo <= ho, "seed {seed} n={n}: exact {eo} vs heuristic {ho}");
        }
    }
}

/// Exhaustive search: is there a feasible chain with exactly `k` DFFs?
fn feasible_with_k(source: i64, reqs: &[Requirement], n: i64, k: usize) -> bool {
    let horizon = reqs
        .iter()
        .map(|r| match *r {
            Requirement::Window(t) => t - 1,
            Requirement::Exact(t) => t,
        })
        .max()
        .unwrap_or(source);
    let candidates: Vec<i64> = (source + 1..=horizon).collect();
    fn ok(chain: &[i64], source: i64, reqs: &[Requirement], n: i64) -> bool {
        let mut prev = source;
        for &s in chain {
            if s - prev > n {
                return false;
            }
            prev = s;
        }
        reqs.iter().all(|r| match *r {
            Requirement::Exact(tau) => tau == source || chain.contains(&tau),
            Requirement::Window(t) => std::iter::once(source)
                .chain(chain.iter().copied())
                .any(|s| s >= t - n && s < t),
        })
    }
    fn rec(
        cands: &[i64],
        k: usize,
        start: usize,
        cur: &mut Vec<i64>,
        source: i64,
        reqs: &[Requirement],
        n: i64,
    ) -> bool {
        if cur.len() == k {
            return ok(cur, source, reqs, n);
        }
        for i in start..cands.len() {
            cur.push(cands[i]);
            if rec(cands, k, i + 1, cur, source, reqs, n) {
                return true;
            }
            cur.pop();
        }
        false
    }
    rec(&candidates, k, 0, &mut Vec::new(), source, reqs, n)
}

#[test]
fn chain_builder_is_optimal_vs_exhaustive() {
    for (source, reqs, n) in [
        (
            0i64,
            vec![Requirement::Window(5), Requirement::Window(9)],
            4i64,
        ),
        (
            0,
            vec![
                Requirement::Exact(3),
                Requirement::Exact(5),
                Requirement::Window(11),
            ],
            4,
        ),
        (
            2,
            vec![
                Requirement::Exact(4),
                Requirement::Exact(5),
                Requirement::Exact(6),
            ],
            4,
        ),
        (0, vec![Requirement::Window(7)], 1),
        (
            1,
            vec![
                Requirement::Window(4),
                Requirement::Exact(9),
                Requirement::Window(12),
            ],
            3,
        ),
        (
            0,
            vec![
                Requirement::Exact(2),
                Requirement::Window(10),
                Requirement::Window(6),
            ],
            4,
        ),
    ] {
        let greedy = build_chain(source, &reqs, n).dff_count();
        // No smaller chain exists…
        for k in 0..greedy {
            assert!(
                !feasible_with_k(source, &reqs, n, k),
                "greedy used {greedy} but {k} suffices (source {source}, n={n}, {reqs:?})"
            );
        }
        // …and the greedy one itself is feasible by construction (checked
        // indirectly through pulse simulation elsewhere).
    }
}

#[test]
fn chain_builder_optimal_on_random_requirement_sets() {
    let mut seed = 0xACE1u64;
    let mut next = move |m: u64| {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) % m
    };
    for _ in 0..40 {
        let n = 1 + next(4) as i64;
        let source = next(3) as i64;
        let mut reqs = Vec::new();
        let count = 1 + next(3);
        let mut exacts: Vec<i64> = Vec::new();
        for _ in 0..count {
            let t = source + 1 + next(8) as i64;
            if next(2) == 0 {
                reqs.push(Requirement::Window(t + 1));
            } else if !exacts.contains(&t) {
                exacts.push(t);
                reqs.push(Requirement::Exact(t));
            }
        }
        if reqs.is_empty() {
            continue;
        }
        let greedy = build_chain(source, &reqs, n).dff_count();
        for k in 0..greedy.min(4) {
            assert!(
                !feasible_with_k(source, &reqs, n, k),
                "greedy {greedy} beaten by {k}: source {source} n {n} {reqs:?}"
            );
        }
    }
}

#[test]
fn t1_staggering_satisfies_eq5_cp_model() {
    // For every T1 cell in a mapped+scheduled adder, build the CP model of
    // eq. (5) — three delivery stages, pairwise distinct, within the capture
    // window, at/after the operand sources — and check our chosen slots are
    // a feasible CP solution (and that CP agrees one exists).
    let lib = CellLibrary::default();
    let aig = epfl::adder(10);
    let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
    let n = 4i64;
    let mut t1_cells = 0;
    for (id, cell) in res.mapped.cells() {
        let MappedCell::T1 { fanins } = cell else {
            continue;
        };
        t1_cells += 1;
        let sigma = res.schedule.stages[id.index()];
        let offsets = res.schedule.t1_offsets[id.index()].expect("offsets");
        // Our chosen delivery stages.
        let chosen: Vec<i64> = offsets.iter().map(|o| sigma - o).collect();
        // CP model: d_k in [max(src_k, sigma - n), sigma - 1], alldifferent.
        let mut m = CpModel::new();
        let vars: Vec<_> = fanins
            .iter()
            .map(|e| {
                let src = res.schedule.stages[e.cell.index()];
                m.add_var(src.max(sigma - n), sigma - 1)
            })
            .collect();
        m.all_different(&vars);
        let sol = m.solve().expect("eq. 5 feasible for a valid schedule");
        // CP found one assignment; ours must also satisfy the constraints.
        let mut sorted = chosen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "distinct deliveries");
        for (k, e) in fanins.iter().enumerate() {
            let src = res.schedule.stages[e.cell.index()];
            assert!(chosen[k] >= src && chosen[k] >= sigma - n && chosen[k] < sigma);
        }
        let _ = sol;
    }
    assert!(t1_cells >= 8, "adder(10) must instantiate T1 cells");
}

#[test]
fn insertion_total_is_sum_of_chains() {
    let lib = CellLibrary::default();
    let aig = epfl::adder(6);
    let mc = map(&aig, &lib, None).circuit;
    let sched = assign_phases(&mc, 4, 2);
    let plan = insert_dffs(&mc, &sched);
    let sum: u64 = plan
        .drivers
        .iter()
        .map(|d| d.chain.dff_count() as u64)
        .sum();
    assert_eq!(sum, plan.total_dffs);
}
