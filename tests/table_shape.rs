//! Integration test: the Table-I machinery end to end at small scale, and
//! the qualitative *shape* of the paper's results.

use sfq_t1::circuits::{epfl, iscas};
use sfq_t1::t1map::cells::CellLibrary;
use sfq_t1::t1map::report::{TableOne, TableRow};

#[test]
fn adder_row_shape_matches_paper() {
    // Paper row `adder` (128-bit): T1/1φ DFF 0.18, T1/4φ area 0.75,
    // depth 128/32/33. We check the same row at 32 bits: the ratios are
    // stable under scaling (both terms are dominated by the same
    // quadratic balancing chains).
    let lib = CellLibrary::default();
    let row = TableRow::measure("adder", &epfl::adder(32), &lib, 4);
    assert!(
        row.t1.t1_used >= 30,
        "nearly every FA becomes a T1: {}",
        row.t1.t1_used
    );
    assert!(
        row.dff_ratio_1() < 0.35,
        "T1 crushes 1φ DFFs: {:.2}",
        row.dff_ratio_1()
    );
    assert!(
        row.dff_ratio_n() < 1.0,
        "T1 beats 4φ DFFs: {:.2}",
        row.dff_ratio_n()
    );
    assert!(
        row.area_ratio_n() > 0.6 && row.area_ratio_n() < 0.95,
        "T1 area win in the paper's ballpark (0.75): {:.2}",
        row.area_ratio_n()
    );
    // Depth: T1 costs about one extra cycle (paper: 33 vs 32).
    assert!(
        row.t1.depth_cycles >= row.multi.depth_cycles
            && row.t1.depth_cycles <= row.multi.depth_cycles + 2,
        "T1 depth {} vs 4φ {}",
        row.t1.depth_cycles,
        row.multi.depth_cycles
    );
    // 1φ→4φ depth divides by ~4.
    assert!(row.multi.depth_cycles <= row.single.depth_cycles / 3);
}

#[test]
fn multiplier_benefits_like_paper() {
    // Paper: c6288 area ratio 0.91, multiplier 0.95 vs 4φ.
    let lib = CellLibrary::default();
    let row = TableRow::measure("c6288", &iscas::c6288_like(), &lib, 4);
    assert!(
        row.t1.t1_used > 50,
        "array multipliers are full-adder fabrics"
    );
    assert!(
        row.area_ratio_n() < 1.0,
        "T1 wins area on the multiplier: {:.2}",
        row.area_ratio_n()
    );
    assert!(row.area_ratio_n() > 0.8, "win is modest, as in the paper");
}

#[test]
fn c7552_is_neutral_or_regresses() {
    // Paper: c7552 area ratio 1.02 (slight regression) — the comparator
    // shares the a⊕b terms with the adder, shrinking every MFFC.
    let lib = CellLibrary::default();
    let row = TableRow::measure("c7552", &iscas::c7552_like(), &lib, 4);
    assert!(
        row.area_ratio_n() >= 0.99,
        "c7552 must not benefit: {:.2}",
        row.area_ratio_n()
    );
}

#[test]
fn averages_match_paper_direction() {
    // On a reduced benchmark set: average area ratio vs 4φ below 1 (the
    // paper reports 0.94), average depth ratio vs 4φ at or above 1
    // (paper: 1.13), and the 1φ ratios far below 1.
    let lib = CellLibrary::default();
    let mut t = TableOne::new();
    t.add("adder", &epfl::adder(24), &lib, 4);
    t.add("square", &epfl::square(12), &lib, 4);
    t.add("mult", &epfl::multiplier(10), &lib, 4);
    t.add("voter", &epfl::voter(63), &lib, 4);
    let avg = t.averages();
    assert!(avg[2] < 0.7, "area vs 1φ strongly improves: {:.2}", avg[2]);
    assert!(
        avg[3] < 1.0,
        "area vs 4φ improves on average: {:.2}",
        avg[3]
    );
    assert!(avg[5] >= 1.0, "depth vs 4φ does not improve: {:.2}", avg[5]);
    assert!(avg[0] < 0.5, "DFFs vs 1φ strongly improve: {:.2}", avg[0]);
}

#[test]
fn csv_roundtrip_has_all_rows() {
    let lib = CellLibrary::default();
    let mut t = TableOne::new();
    t.add("adder", &epfl::adder(8), &lib, 4);
    t.add("voter", &epfl::voter(15), &lib, 4);
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 3, "header + 2 rows");
    assert!(csv.contains("adder,"));
    assert!(csv.contains("voter,"));
}
